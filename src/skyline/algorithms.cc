#include "src/skyline/algorithms.h"

#include <algorithm>
#include <limits>
#include <numeric>

#include "src/common/logging.h"
#include "src/skyline/dominance.h"

namespace skydia {

namespace {

// Sorts index permutation of `ids` by (x asc, y asc) over `coords` and scans
// the staircase. A point is a skyline member iff no point with strictly
// smaller x has y <= its y, and within its x-group it attains the group
// minimum y (duplicates of the minimum all qualify).
std::vector<PointId> MinStaircaseImpl(const std::vector<Point2D>& coords,
                                      const std::vector<PointId>& ids) {
  SKYDIA_CHECK_EQ(coords.size(), ids.size());
  const size_t n = coords.size();
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    if (coords[a].x != coords[b].x) return coords[a].x < coords[b].x;
    return coords[a].y < coords[b].y;
  });

  std::vector<PointId> result;
  int64_t best_y = std::numeric_limits<int64_t>::max();  // min y over prior groups
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j < n && coords[order[j]].x == coords[order[i]].x) ++j;
    // Group [i, j) shares one x; group minimum y comes first in the order.
    const int64_t group_min_y = coords[order[i]].y;
    if (group_min_y < best_y) {
      for (size_t k = i; k < j && coords[order[k]].y == group_min_y; ++k) {
        result.push_back(ids[order[k]]);
      }
      best_y = group_min_y;
    }
    i = j;
  }
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<PointId> SkylineBnlNd(const DatasetNd& dataset) {
  // Block-nested-loop with a single window (all in memory): candidates enter
  // the window unless dominated; dominated window members are evicted.
  const int dims = dataset.dims();
  std::vector<PointId> window;
  for (PointId id = 0; id < dataset.size(); ++id) {
    const int64_t* p = dataset.row(id);
    bool dominated = false;
    size_t out = 0;
    for (size_t w = 0; w < window.size(); ++w) {
      const int64_t* q = dataset.row(window[w]);
      if (!dominated && DominatesNd(q, p, dims)) {
        dominated = true;
        // Nothing already in the window can be dominated by q's survivor set;
        // keep the remainder unchanged.
        for (size_t rest = w; rest < window.size(); ++rest) {
          window[out++] = window[rest];
        }
        break;
      }
      if (!DominatesNd(p, q, dims)) {
        window[out++] = window[w];
      }
    }
    if (!dominated) {
      window.resize(out);
      window.push_back(id);
    } else {
      window.resize(out);
    }
  }
  std::sort(window.begin(), window.end());
  return window;
}

std::vector<PointId> SkylineSfsNd(const DatasetNd& dataset) {
  // Sort-Filter-Skyline: process points in ascending coordinate-sum order
  // (a monotone scoring function), so no later point can dominate an earlier
  // one and the window only grows.
  const int dims = dataset.dims();
  std::vector<PointId> order(dataset.size());
  std::iota(order.begin(), order.end(), 0);
  std::vector<int64_t> score(dataset.size());
  for (PointId id = 0; id < dataset.size(); ++id) {
    int64_t s = 0;
    for (int d = 0; d < dims; ++d) s += dataset.coord(id, d);
    score[id] = s;
  }
  std::sort(order.begin(), order.end(), [&](PointId a, PointId b) {
    if (score[a] != score[b]) return score[a] < score[b];
    return a < b;
  });

  std::vector<PointId> skyline;
  for (PointId id : order) {
    const int64_t* p = dataset.row(id);
    bool dominated = false;
    for (PointId s : skyline) {
      if (DominatesNd(dataset.row(s), p, dims)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) skyline.push_back(id);
  }
  std::sort(skyline.begin(), skyline.end());
  return skyline;
}

// --- Divide & conquer -------------------------------------------------------

// View over point ids comparing a suffix of the dimensions.
struct DcContext {
  const DatasetNd* dataset;
};

// True when a <= b coordinate-wise on dims [from, dims).
bool LeqOnSuffix(const DatasetNd& ds, PointId a, PointId b, int from) {
  for (int d = from; d < ds.dims(); ++d) {
    if (ds.coord(a, d) > ds.coord(b, d)) return false;
  }
  return true;
}

// Removes from `high` every id dominated-on-suffix by some id in `low`
// (non-strict <= on dims [from, dims); strictness is guaranteed by the
// caller's dim `from - 1` split). Specialized paths for 1 and 2 remaining
// dimensions keep the common cases near-linear.
void FilterDominated(const DatasetNd& ds, const std::vector<PointId>& low,
                     std::vector<PointId>* high, int from) {
  if (low.empty() || high->empty()) return;
  const int remaining = ds.dims() - from;
  if (remaining <= 0) {
    high->clear();  // dim-0 strictness alone dominates everything
    return;
  }
  if (remaining == 1) {
    int64_t min_v = std::numeric_limits<int64_t>::max();
    for (PointId l : low) min_v = std::min(min_v, ds.coord(l, from));
    std::erase_if(*high, [&](PointId h) { return ds.coord(h, from) >= min_v; });
    return;
  }
  if (remaining == 2) {
    // Staircase test: h is dominated iff some l has l[d0] <= h[d0] and
    // l[d1] <= h[d1]. Sweep both sides in ascending d0, tracking min d1.
    const int d0 = from;
    const int d1 = from + 1;
    std::vector<PointId> low_sorted = low;
    std::sort(low_sorted.begin(), low_sorted.end(), [&](PointId a, PointId b) {
      return ds.coord(a, d0) < ds.coord(b, d0);
    });
    std::vector<PointId> high_sorted = *high;
    std::sort(high_sorted.begin(), high_sorted.end(),
              [&](PointId a, PointId b) {
                return ds.coord(a, d0) < ds.coord(b, d0);
              });
    std::vector<PointId> kept;
    kept.reserve(high_sorted.size());
    size_t li = 0;
    int64_t min_d1 = std::numeric_limits<int64_t>::max();
    for (PointId h : high_sorted) {
      while (li < low_sorted.size() &&
             ds.coord(low_sorted[li], d0) <= ds.coord(h, d0)) {
        min_d1 = std::min(min_d1, ds.coord(low_sorted[li], d1));
        ++li;
      }
      if (ds.coord(h, d1) < min_d1) kept.push_back(h);
    }
    std::sort(kept.begin(), kept.end());
    std::vector<PointId> filtered;
    filtered.reserve(kept.size());
    // Preserve the original order of *high.
    for (PointId h : *high) {
      if (std::binary_search(kept.begin(), kept.end(), h)) {
        filtered.push_back(h);
      }
    }
    *high = std::move(filtered);
    return;
  }
  // General case: pairwise filter (used only for d >= 4 recursion tails).
  std::erase_if(*high, [&](PointId h) {
    for (PointId l : low) {
      if (LeqOnSuffix(ds, l, h, from)) return true;
    }
    return false;
  });
}

// Computes the skyline of `ids` (distinct points, pre-sorted lexicographically
// over dims [from, dims)) considering only dims [from, dims).
std::vector<PointId> DcSkyline(const DatasetNd& ds, std::vector<PointId> ids,
                               int from) {
  const int remaining = ds.dims() - from;
  if (ids.size() <= 1) return ids;
  if (remaining == 1) {
    // Minimum of the single remaining dimension; the lexicographic pre-sort
    // puts it first, and only exact ties share it (points are distinct on the
    // suffix only if... they may tie entirely on the suffix).
    int64_t min_v = std::numeric_limits<int64_t>::max();
    for (PointId id : ids) min_v = std::min(min_v, ds.coord(id, from));
    std::erase_if(ids, [&](PointId id) { return ds.coord(id, from) != min_v; });
    return ids;
  }
  if (remaining == 2) {
    std::vector<Point2D> coords;
    coords.reserve(ids.size());
    for (PointId id : ids) {
      coords.push_back(Point2D{ds.coord(id, from), ds.coord(id, from + 1)});
    }
    return MinStaircase(std::move(coords), ids);
  }
  if (ids.size() <= 32) {
    // Small base case: pairwise suffix dominance with explicit strictness.
    std::vector<PointId> result;
    for (PointId a : ids) {
      bool dominated = false;
      for (PointId b : ids) {
        if (a == b) continue;
        bool leq = true;
        bool strict = false;
        for (int d = from; d < ds.dims(); ++d) {
          if (ds.coord(b, d) > ds.coord(a, d)) {
            leq = false;
            break;
          }
          if (ds.coord(b, d) < ds.coord(a, d)) strict = true;
        }
        if (leq && strict) {
          dominated = true;
          break;
        }
      }
      if (!dominated) result.push_back(a);
    }
    return result;
  }

  // Split on dim `from` so that low-part values are strictly below high-part
  // values. If every point shares the value, the dimension is inert: recurse
  // on the suffix.
  std::sort(ids.begin(), ids.end(), [&](PointId a, PointId b) {
    return ds.coord(a, from) < ds.coord(b, from);
  });
  const int64_t lo_v = ds.coord(ids.front(), from);
  const int64_t hi_v = ds.coord(ids.back(), from);
  if (lo_v == hi_v) {
    return DcSkyline(ds, std::move(ids), from + 1);
  }
  const int64_t mid_v = ds.coord(ids[ids.size() / 2], from);
  // Put values <= split in low; choose split so both sides are non-empty.
  const int64_t split = (mid_v == hi_v) ? mid_v - 1 : mid_v;
  std::vector<PointId> low;
  std::vector<PointId> high;
  for (PointId id : ids) {
    (ds.coord(id, from) <= split ? low : high).push_back(id);
  }
  std::vector<PointId> sky_low = DcSkyline(ds, std::move(low), from);
  std::vector<PointId> sky_high = DcSkyline(ds, std::move(high), from);
  // Every low point beats every high point strictly on dim `from`, so a high
  // survivor must avoid non-strict suffix dominance by any low skyline point.
  FilterDominated(ds, sky_low, &sky_high, from + 1);
  sky_low.insert(sky_low.end(), sky_high.begin(), sky_high.end());
  return sky_low;
}

std::vector<PointId> SkylineDcIds(const DatasetNd& dataset,
                                  std::vector<PointId> order) {
  const int dims = dataset.dims();
  const size_t n = order.size();
  // Group exact duplicates: duplicates of a skyline member are all skyline.
  std::sort(order.begin(), order.end(), [&](PointId a, PointId b) {
    for (int d = 0; d < dims; ++d) {
      if (dataset.coord(a, d) != dataset.coord(b, d)) {
        return dataset.coord(a, d) < dataset.coord(b, d);
      }
    }
    return a < b;
  });
  std::vector<PointId> representatives;
  std::vector<std::pair<size_t, size_t>> groups;  // [begin, end) into `order`
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    auto equal = [&](PointId a, PointId b) {
      for (int d = 0; d < dims; ++d) {
        if (dataset.coord(a, d) != dataset.coord(b, d)) return false;
      }
      return true;
    };
    while (j < n && equal(order[i], order[j])) ++j;
    representatives.push_back(order[i]);
    groups.emplace_back(i, j);
    i = j;
  }

  std::vector<PointId> sky_reps = DcSkyline(dataset, representatives, 0);
  std::sort(sky_reps.begin(), sky_reps.end());

  std::vector<PointId> result;
  for (size_t g = 0; g < groups.size(); ++g) {
    const PointId rep = order[groups[g].first];
    if (std::binary_search(sky_reps.begin(), sky_reps.end(), rep)) {
      for (size_t k = groups[g].first; k < groups[g].second; ++k) {
        result.push_back(order[k]);
      }
    }
  }
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<PointId> SkylineDcNd(const DatasetNd& dataset) {
  std::vector<PointId> ids(dataset.size());
  std::iota(ids.begin(), ids.end(), 0);
  return SkylineDcIds(dataset, std::move(ids));
}

}  // namespace

std::vector<PointId> SkylineOfSubsetNd(const DatasetNd& dataset,
                                       const std::vector<PointId>& candidates) {
  return SkylineDcIds(dataset, candidates);
}

std::vector<PointId> MinStaircase(std::vector<Point2D> coords,
                                  std::vector<PointId> ids) {
  return MinStaircaseImpl(coords, ids);
}

std::vector<PointId> ComputeSkyline2d(const Dataset& dataset,
                                      SkylineAlgorithm algorithm) {
  if (algorithm == SkylineAlgorithm::kSortScan) {
    std::vector<PointId> ids(dataset.size());
    std::iota(ids.begin(), ids.end(), 0);
    return MinStaircaseImpl(dataset.points(), ids);
  }
  return ComputeSkylineNd(DatasetNd::FromDataset2d(dataset), algorithm);
}

std::vector<PointId> ComputeSkylineNd(const DatasetNd& dataset,
                                      SkylineAlgorithm algorithm) {
  switch (algorithm) {
    case SkylineAlgorithm::kSortScan: {
      SKYDIA_CHECK_EQ(dataset.dims(), 2);
      std::vector<Point2D> coords;
      coords.reserve(dataset.size());
      std::vector<PointId> ids(dataset.size());
      std::iota(ids.begin(), ids.end(), 0);
      for (PointId id = 0; id < dataset.size(); ++id) {
        coords.push_back(Point2D{dataset.coord(id, 0), dataset.coord(id, 1)});
      }
      return MinStaircaseImpl(coords, ids);
    }
    case SkylineAlgorithm::kBlockNestedLoop:
      return SkylineBnlNd(dataset);
    case SkylineAlgorithm::kSortFilter:
      return SkylineSfsNd(dataset);
    case SkylineAlgorithm::kDivideConquer:
      return SkylineDcNd(dataset);
  }
  SKYDIA_CHECK(false);
  return {};
}

std::vector<PointId> SkylineOfSubset2d(const Dataset& dataset,
                                       const std::vector<PointId>& candidates) {
  std::vector<Point2D> coords;
  coords.reserve(candidates.size());
  for (PointId id : candidates) coords.push_back(dataset.point(id));
  return MinStaircaseImpl(coords, candidates);
}

}  // namespace skydia
