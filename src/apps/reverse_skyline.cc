#include "src/apps/reverse_skyline.h"

#include <algorithm>
#include <cstdlib>
#include <numeric>

#include "src/common/hash.h"

namespace skydia {

namespace {

bool DynamicallyDominatesAround(const Point2D& center, const Point2D& a,
                                const Point2D& b) {
  const int64_t ax = std::llabs(a.x - center.x);
  const int64_t ay = std::llabs(a.y - center.y);
  const int64_t bx = std::llabs(b.x - center.x);
  const int64_t by = std::llabs(b.y - center.y);
  return ax <= bx && ay <= by && (ax < bx || ay < by);
}

uint64_t CoordKey(int64_t x, int64_t y) {
  return HashCombine(static_cast<uint64_t>(x) * 0x9E3779B97F4A7C15ull,
                     static_cast<uint64_t>(y));
}

}  // namespace

std::vector<PointId> ReverseSkylineBruteForce(const Dataset& dataset,
                                              const Point2D& q) {
  std::vector<PointId> result;
  for (PointId p = 0; p < dataset.size(); ++p) {
    const Point2D& center = dataset.point(p);
    bool dominated = false;
    for (PointId other = 0; other < dataset.size(); ++other) {
      if (other == p) continue;
      if (DynamicallyDominatesAround(center, dataset.point(other), q)) {
        dominated = true;
        break;
      }
    }
    if (!dominated) result.push_back(p);
  }
  return result;
}

ReverseSkylineIndex::ReverseSkylineIndex(const Dataset& dataset)
    : dataset_(dataset) {
  const size_t n = dataset.size();
  std::vector<PointId> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](PointId a, PointId b) {
    return dataset.point(a).x < dataset.point(b).x;
  });
  sorted_x_.reserve(n);
  y_by_x_.reserve(n);
  for (PointId id : order) {
    sorted_x_.push_back(dataset.point(id).x);
    y_by_x_.push_back(dataset.point(id).y);
    ++exact_[CoordKey(dataset.point(id).x, dataset.point(id).y)];
  }
  // Merge-sort tree: node 1 covers [0, n); children split halves; each node
  // stores its range's y values sorted.
  tree_.assign(4 * std::max<size_t>(n, 1), {});
  if (n == 0) return;
  auto build = [&](auto&& self, size_t node, size_t lo, size_t hi) -> void {
    if (hi - lo == 1) {
      tree_[node] = {y_by_x_[lo]};
      return;
    }
    const size_t mid = (lo + hi) / 2;
    self(self, 2 * node, lo, mid);
    self(self, 2 * node + 1, mid, hi);
    tree_[node].resize(hi - lo);
    std::merge(tree_[2 * node].begin(), tree_[2 * node].end(),
               tree_[2 * node + 1].begin(), tree_[2 * node + 1].end(),
               tree_[node].begin());
  };
  build(build, 1, 0, n);
}

int64_t ReverseSkylineIndex::CountNode(size_t node, size_t lo, size_t hi,
                                       size_t x_lo, size_t x_hi, int64_t y_lo,
                                       int64_t y_hi) const {
  if (x_hi <= lo || hi <= x_lo) return 0;
  if (x_lo <= lo && hi <= x_hi) {
    const std::vector<int64_t>& ys = tree_[node];
    return std::upper_bound(ys.begin(), ys.end(), y_hi) -
           std::lower_bound(ys.begin(), ys.end(), y_lo);
  }
  const size_t mid = (lo + hi) / 2;
  return CountNode(2 * node, lo, mid, x_lo, x_hi, y_lo, y_hi) +
         CountNode(2 * node + 1, mid, hi, x_lo, x_hi, y_lo, y_hi);
}

int64_t ReverseSkylineIndex::CountBox(int64_t x_lo, int64_t x_hi, int64_t y_lo,
                                      int64_t y_hi) const {
  if (sorted_x_.empty() || x_lo > x_hi || y_lo > y_hi) return 0;
  const size_t lo = std::lower_bound(sorted_x_.begin(), sorted_x_.end(), x_lo) -
                    sorted_x_.begin();
  const size_t hi = std::upper_bound(sorted_x_.begin(), sorted_x_.end(), x_hi) -
                    sorted_x_.begin();
  if (lo >= hi) return 0;
  return CountNode(1, 0, sorted_x_.size(), lo, hi, y_lo, y_hi);
}

int64_t ReverseSkylineIndex::CountAt(int64_t x, int64_t y) const {
  const auto it = exact_.find(CoordKey(x, y));
  return it == exact_.end() ? 0 : it->second;
}

std::vector<PointId> ReverseSkylineIndex::Query(const Point2D& q) const {
  std::vector<PointId> result;
  for (PointId p = 0; p < dataset_.size(); ++p) {
    const Point2D& c = dataset_.point(p);
    const int64_t dx = std::llabs(q.x - c.x);
    const int64_t dy = std::llabs(q.y - c.y);
    // Closed box minus exact-corner ties (no strict dimension) minus p
    // itself; anything left dominates q around p.
    const int64_t in_box =
        CountBox(c.x - dx, c.x + dx, c.y - dy, c.y + dy);
    int64_t corners = 0;
    for (const int64_t cx : dx == 0 ? std::vector<int64_t>{c.x}
                                    : std::vector<int64_t>{c.x - dx, c.x + dx}) {
      for (const int64_t cy : dy == 0
                                  ? std::vector<int64_t>{c.y}
                                  : std::vector<int64_t>{c.y - dy, c.y + dy}) {
        corners += CountAt(cx, cy);
      }
    }
    const bool p_is_corner = (dx == 0 && dy == 0);
    const int64_t dominators = in_box - corners - (p_is_corner ? 0 : 1);
    if (dominators == 0) result.push_back(p);
  }
  return result;
}

}  // namespace skydia
