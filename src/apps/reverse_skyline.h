// Reverse skyline queries (application 1 of §I): the reverse skyline of a
// query q is the set of points p whose *dynamic* skyline (with p as the
// query point) contains q — equivalently, p is in RSL(q) iff no other point
// p' satisfies |p'[i] - p[i]| <= |q[i] - p[i]| in every dimension with one
// strict inequality.
//
// Besides the O(n^2) reference, ReverseSkylineIndex answers RSL queries with
// an orthogonal range-counting structure (a merge-sort tree over the
// x-sorted points): p is in RSL(q) iff the closed box centred at p with
// half-extents |q - p| contains no competitor except corner ties. Build
// O(n log n), query O(n log^2 n) — the precompute-then-lookup pattern the
// paper advocates for skyline-diagram applications.
#ifndef SKYDIA_SRC_APPS_REVERSE_SKYLINE_H_
#define SKYDIA_SRC_APPS_REVERSE_SKYLINE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/geometry/dataset.h"
#include "src/geometry/point.h"

namespace skydia {

/// Reference implementation, O(n^2). Returns ids sorted ascending.
std::vector<PointId> ReverseSkylineBruteForce(const Dataset& dataset,
                                              const Point2D& q);

/// Precomputed index for reverse skyline queries.
class ReverseSkylineIndex {
 public:
  /// Keeps a reference to `dataset`; it must outlive the index.
  explicit ReverseSkylineIndex(const Dataset& dataset);

  /// Returns RSL(q), ids sorted ascending.
  std::vector<PointId> Query(const Point2D& q) const;

  /// Number of points with x in [x_lo, x_hi] and y in [y_lo, y_hi]
  /// (closed ranges). Exposed for testing.
  int64_t CountBox(int64_t x_lo, int64_t x_hi, int64_t y_lo,
                   int64_t y_hi) const;

 private:
  int64_t CountNode(size_t node, size_t lo, size_t hi, size_t x_lo,
                    size_t x_hi, int64_t y_lo, int64_t y_hi) const;
  /// Number of points exactly at (x, y).
  int64_t CountAt(int64_t x, int64_t y) const;

  const Dataset& dataset_;
  std::vector<int64_t> sorted_x_;            // x of points, ascending
  std::vector<int64_t> y_by_x_;              // y in the same order
  std::vector<std::vector<int64_t>> tree_;   // merge-sort tree over y_by_x_
  std::unordered_map<uint64_t, int64_t> exact_;
};

}  // namespace skydia

#endif  // SKYDIA_SRC_APPS_REVERSE_SKYLINE_H_
