#include "src/apps/authentication.h"

#include <cstring>

namespace skydia {

namespace {

Sha256Digest CombineDigests(const Sha256Digest& left,
                            const Sha256Digest& right) {
  Sha256 h;
  h.Update(left.data(), left.size());
  h.Update(right.data(), right.size());
  return h.Finish();
}

uint64_t NextPowerOfTwo(uint64_t v) {
  uint64_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

Sha256Digest AuthenticatedDiagram::LeafDigest(uint64_t cell_index,
                                              std::span<const PointId> result) {
  Sha256 h;
  uint8_t buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<uint8_t>(cell_index >> (8 * i));
  h.Update(buf, 8);
  for (PointId id : result) {
    uint8_t idb[4];
    for (int i = 0; i < 4; ++i) idb[i] = static_cast<uint8_t>(id >> (8 * i));
    h.Update(idb, 4);
  }
  return h.Finish();
}

AuthenticatedDiagram::AuthenticatedDiagram(const CellDiagram& diagram)
    : diagram_(diagram) {
  const CellGrid& grid = diagram.grid();
  num_leaves_ = grid.num_cells();
  const uint64_t padded = NextPowerOfTwo(std::max<uint64_t>(num_leaves_, 1));

  std::vector<Sha256Digest> leaves(padded);
  for (uint64_t i = 0; i < padded; ++i) {
    if (i < num_leaves_) {
      const auto cx = static_cast<uint32_t>(i % grid.num_columns());
      const auto cy = static_cast<uint32_t>(i / grid.num_columns());
      leaves[i] = LeafDigest(i, diagram.CellSkyline(cx, cy));
    } else {
      leaves[i] = Sha256::Hash("skydia:padding-leaf");
    }
  }
  levels_.push_back(std::move(leaves));
  while (levels_.back().size() > 1) {
    const std::vector<Sha256Digest>& below = levels_.back();
    std::vector<Sha256Digest> level(below.size() / 2);
    for (size_t i = 0; i < level.size(); ++i) {
      level[i] = CombineDigests(below[2 * i], below[2 * i + 1]);
    }
    levels_.push_back(std::move(level));
  }
  root_ = levels_.back()[0];
}

SkylineProof AuthenticatedDiagram::Prove(const Point2D& q) const {
  const CellGrid& grid = diagram_.grid();
  const uint32_t cx = grid.ColumnOf(q.x);
  const uint32_t cy = grid.RowOf(q.y);
  SkylineProof proof;
  proof.cell_index = grid.CellIndex(cx, cy);
  const auto result = diagram_.CellSkyline(cx, cy);
  proof.result.assign(result.begin(), result.end());
  uint64_t idx = proof.cell_index;
  for (size_t level = 0; level + 1 < levels_.size(); ++level) {
    proof.path.push_back(levels_[level][idx ^ 1]);
    idx >>= 1;
  }
  return proof;
}

bool AuthenticatedDiagram::Verify(const Sha256Digest& root,
                                  uint64_t num_leaves,
                                  const SkylineProof& proof) {
  if (proof.cell_index >= num_leaves) return false;
  const uint64_t padded = NextPowerOfTwo(std::max<uint64_t>(num_leaves, 1));
  // Path length must match the tree height exactly.
  uint64_t expect_height = 0;
  for (uint64_t v = padded; v > 1; v >>= 1) ++expect_height;
  if (proof.path.size() != expect_height) return false;

  Sha256Digest digest = LeafDigest(proof.cell_index, proof.result);
  uint64_t idx = proof.cell_index;
  for (const Sha256Digest& sibling : proof.path) {
    digest = (idx & 1) ? CombineDigests(sibling, digest)
                       : CombineDigests(digest, sibling);
    idx >>= 1;
  }
  return std::memcmp(digest.data(), root.data(), digest.size()) == 0;
}

}  // namespace skydia
