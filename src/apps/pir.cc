#include "src/apps/pir.h"

#include <algorithm>

#include "src/common/logging.h"

namespace skydia {

PirDatabase BuildPirDatabase(const CellDiagram& diagram) {
  const CellGrid& grid = diagram.grid();
  PirDatabase db;
  db.num_records = grid.num_cells();

  uint64_t max_ids = 0;
  for (uint32_t cy = 0; cy < grid.num_rows(); ++cy) {
    for (uint32_t cx = 0; cx < grid.num_columns(); ++cx) {
      max_ids = std::max<uint64_t>(max_ids, diagram.CellSkyline(cx, cy).size());
    }
  }
  db.record_bytes = 4 + max_ids * 4;  // u32 count + padded u32 ids
  db.data.assign(db.num_records * db.record_bytes, 0);

  for (uint32_t cy = 0; cy < grid.num_rows(); ++cy) {
    for (uint32_t cx = 0; cx < grid.num_columns(); ++cx) {
      const uint64_t rec = grid.CellIndex(cx, cy);
      uint8_t* out = db.data.data() + rec * db.record_bytes;
      const auto sky = diagram.CellSkyline(cx, cy);
      const auto count = static_cast<uint32_t>(sky.size());
      for (int b = 0; b < 4; ++b) out[b] = static_cast<uint8_t>(count >> (8 * b));
      for (size_t i = 0; i < sky.size(); ++i) {
        for (int b = 0; b < 4; ++b) {
          out[4 + 4 * i + b] = static_cast<uint8_t>(sky[i] >> (8 * b));
        }
      }
    }
  }
  return db;
}

std::vector<PointId> DecodePirRecord(const uint8_t* record,
                                     uint64_t record_bytes) {
  uint32_t count = 0;
  for (int b = 0; b < 4; ++b) count |= uint32_t{record[b]} << (8 * b);
  SKYDIA_CHECK_LE(4 + uint64_t{count} * 4, record_bytes);
  std::vector<PointId> ids(count);
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t v = 0;
    for (int b = 0; b < 4; ++b) v |= uint32_t{record[4 + 4 * i + b]} << (8 * b);
    ids[i] = v;
  }
  return ids;
}

std::vector<uint8_t> PirServer::Answer(
    const std::vector<uint8_t>& selection) const {
  SKYDIA_CHECK_EQ(selection.size(), database_->num_records);
  std::vector<uint8_t> answer(database_->record_bytes, 0);
  for (uint64_t i = 0; i < database_->num_records; ++i) {
    if (!selection[i]) continue;
    const uint8_t* rec = database_->record(i);
    for (uint64_t b = 0; b < database_->record_bytes; ++b) answer[b] ^= rec[b];
  }
  return answer;
}

PirClient::Queries PirClient::CreateQueries(uint64_t index, Rng* rng) const {
  SKYDIA_CHECK_LT(index, num_records_);
  Queries q;
  q.to_server1.resize(num_records_);
  for (auto& bit : q.to_server1) bit = static_cast<uint8_t>(rng->NextBounded(2));
  q.to_server2 = q.to_server1;
  q.to_server2[index] ^= 1;
  return q;
}

StatusOr<std::vector<uint8_t>> PirClient::Decode(
    const std::vector<uint8_t>& answer1,
    const std::vector<uint8_t>& answer2) const {
  if (answer1.size() != record_bytes_ || answer2.size() != record_bytes_) {
    return Status::InvalidArgument("PIR answers have the wrong size");
  }
  std::vector<uint8_t> record(record_bytes_);
  for (uint64_t b = 0; b < record_bytes_; ++b) {
    record[b] = answer1[b] ^ answer2[b];
  }
  return record;
}

StatusOr<std::vector<PointId>> PrivateSkylineQuery(const CellDiagram& diagram,
                                                   const PirDatabase& database,
                                                   const PirServer& server1,
                                                   const PirServer& server2,
                                                   const Point2D& q, Rng* rng) {
  const CellGrid& grid = diagram.grid();
  const uint64_t index = grid.CellIndex(grid.ColumnOf(q.x), grid.RowOf(q.y));
  PirClient client(database.num_records, database.record_bytes);
  const PirClient::Queries queries = client.CreateQueries(index, rng);
  StatusOr<std::vector<uint8_t>> record = client.Decode(
      server1.Answer(queries.to_server1), server2.Answer(queries.to_server2));
  if (!record.ok()) return record.status();
  return DecodePirRecord(record->data(), database.record_bytes);
}

}  // namespace skydia
