// Authenticated outsourced skyline queries (application 2 of §I), the
// skyline-diagram analogue of Voronoi-based kNN authentication: the data
// owner builds a Merkle tree over the diagram's cells and publishes the root
// digest; an untrusted server answers queries with the cell result plus a
// Merkle path; clients verify the path against the root, so a cheating
// server cannot forge or truncate results.
#ifndef SKYDIA_SRC_APPS_AUTHENTICATION_H_
#define SKYDIA_SRC_APPS_AUTHENTICATION_H_

#include <cstdint>
#include <vector>

#include "src/common/sha256.h"
#include "src/common/status.h"
#include "src/core/skyline_cell.h"
#include "src/geometry/point.h"

namespace skydia {

/// A verification object accompanying one query answer.
struct SkylineProof {
  uint64_t cell_index = 0;  // row-major cell
  std::vector<PointId> result;
  /// Sibling digests from leaf to root.
  std::vector<Sha256Digest> path;
};

/// Merkle commitment over all cells of a CellDiagram.
class AuthenticatedDiagram {
 public:
  /// Builds the tree; keeps a reference to `diagram` (must outlive this).
  explicit AuthenticatedDiagram(const CellDiagram& diagram);

  /// The public root digest.
  const Sha256Digest& root() const { return root_; }
  uint64_t num_leaves() const { return num_leaves_; }

  /// Server side: answer + proof for query point q.
  SkylineProof Prove(const Point2D& q) const;

  /// Client side: checks a proof against a trusted root digest. Static so a
  /// client needs only the root, not the diagram.
  static bool Verify(const Sha256Digest& root, uint64_t num_leaves,
                     const SkylineProof& proof);

 private:
  static Sha256Digest LeafDigest(uint64_t cell_index,
                                 std::span<const PointId> result);

  const CellDiagram& diagram_;
  uint64_t num_leaves_ = 0;
  /// levels_[0] = leaf digests (padded to a power of two); levels_.back() has
  /// a single root entry.
  std::vector<std::vector<Sha256Digest>> levels_;
  Sha256Digest root_;
};

}  // namespace skydia

#endif  // SKYDIA_SRC_APPS_AUTHENTICATION_H_
