// Private skyline queries via two-server XOR PIR (application 3 of §I),
// mirroring the Voronoi-based private kNN construction: the diagram's cell
// table is replicated on two non-colluding servers; the client retrieves the
// cell covering its query point without either server learning which cell —
// hence which query location — was requested.
//
// Protocol (classic Chor et al. two-server scheme): the client draws a
// uniformly random subset S1 of record indices and sets S2 = S1 xor {i}. Each
// server returns the XOR of its selected records; the XOR of the two answers
// is record i. Each individual subset is uniformly random, so a single
// server's view is independent of i.
#ifndef SKYDIA_SRC_APPS_PIR_H_
#define SKYDIA_SRC_APPS_PIR_H_

#include <cstdint>
#include <vector>

#include "src/common/random.h"
#include "src/common/status.h"
#include "src/core/skyline_cell.h"
#include "src/geometry/point.h"

namespace skydia {

/// Fixed-size record encoding of one cell's result (id count + padded ids).
struct PirDatabase {
  uint64_t num_records = 0;
  uint64_t record_bytes = 0;
  std::vector<uint8_t> data;  // num_records * record_bytes

  const uint8_t* record(uint64_t i) const { return data.data() + i * record_bytes; }
};

/// Serializes a CellDiagram's cell table into the PIR record format.
PirDatabase BuildPirDatabase(const CellDiagram& diagram);

/// Decodes one record back into a result-id list.
std::vector<PointId> DecodePirRecord(const uint8_t* record,
                                     uint64_t record_bytes);

/// One of the two non-colluding servers.
class PirServer {
 public:
  explicit PirServer(const PirDatabase* database) : database_(database) {}

  /// XORs the records selected by `selection` (one bit per record).
  std::vector<uint8_t> Answer(const std::vector<uint8_t>& selection) const;

 private:
  const PirDatabase* database_;
};

/// Client-side query state for one retrieval.
class PirClient {
 public:
  PirClient(uint64_t num_records, uint64_t record_bytes)
      : num_records_(num_records), record_bytes_(record_bytes) {}

  /// Builds the two selection vectors for retrieving record `index`.
  struct Queries {
    std::vector<uint8_t> to_server1;
    std::vector<uint8_t> to_server2;
  };
  Queries CreateQueries(uint64_t index, Rng* rng) const;

  /// Combines the two answers into the requested record.
  StatusOr<std::vector<uint8_t>> Decode(const std::vector<uint8_t>& answer1,
                                        const std::vector<uint8_t>& answer2) const;

 private:
  uint64_t num_records_;
  uint64_t record_bytes_;
};

/// End-to-end convenience: privately retrieves the skyline of the cell
/// containing `q` from two PirServer replicas.
StatusOr<std::vector<PointId>> PrivateSkylineQuery(const CellDiagram& diagram,
                                                   const PirDatabase& database,
                                                   const PirServer& server1,
                                                   const PirServer& server2,
                                                   const Point2D& q, Rng* rng);

}  // namespace skydia

#endif  // SKYDIA_SRC_APPS_PIR_H_
