// Real-data workloads.
//
// (1) The paper's running example: the 11-hotel dataset of Figure 1, with
//     coordinates reconstructed so that every query result stated in the
//     paper holds verbatim for q = (10, 80):
//       quadrant-1 skyline {p3, p8, p10}, Q2 {p6}, Q3 {}, Q4 {p11},
//       global {p3, p6, p8, p10, p11}, dynamic {p6, p11}.
//     (tests/datagen/real_data_test.cc asserts all of these.)
//
// (2) An "NBA-like" stand-in for the paper's (unnamed, unavailable) real
//     dataset: a deterministic correlated integer table with realistic
//     column ranges, written to CSV and read back through the CSV substrate,
//     so the real-data path exercises limited-domain, tie-heavy data end to
//     end. See DESIGN.md "Substitutions".
#ifndef SKYDIA_SRC_DATAGEN_REAL_DATA_H_
#define SKYDIA_SRC_DATAGEN_REAL_DATA_H_

#include <string>

#include "src/common/status.h"
#include "src/geometry/dataset.h"

namespace skydia {

/// The hotel running example (Figure 1). Labels are "p1".."p11";
/// x = distance to downtown, y = price; domain size 128.
Dataset HotelExample();

/// The paper's example query point q = (10, 80).
Point2D HotelExampleQuery();

/// Writes the NBA-like stand-in table (columns: player_id, points_rank,
/// rebounds_rank — lower is better) as CSV. Deterministic in the seed.
Status WriteNbaLikeCsv(const std::string& path, size_t n, uint64_t seed);

/// Loads a 2-D dataset from a CSV file with a header row. `x_column` and
/// `y_column` name the attribute columns; a "label" column is used for
/// labels when present. Domain is the smallest power of two above the max
/// coordinate.
StatusOr<Dataset> LoadDatasetCsv(const std::string& path,
                                 const std::string& x_column,
                                 const std::string& y_column);

}  // namespace skydia

#endif  // SKYDIA_SRC_DATAGEN_REAL_DATA_H_
