// Synthetic workload generators: the standard skyline benchmark
// distributions of Börzsönyi et al. (independent, correlated,
// anti-correlated) plus a clustered variant. All generators are
// deterministic in the seed.
#ifndef SKYDIA_SRC_DATAGEN_DISTRIBUTIONS_H_
#define SKYDIA_SRC_DATAGEN_DISTRIBUTIONS_H_

#include <cstdint>

#include "src/common/status.h"
#include "src/geometry/dataset.h"

namespace skydia {

enum class Distribution {
  kIndependent,     // uniform per dimension
  kCorrelated,      // concentrated around the main diagonal
  kAnticorrelated,  // concentrated around the anti-diagonal
  kClustered,       // Gaussian blobs around random centers
};

const char* DistributionName(Distribution distribution);

struct DataGenOptions {
  size_t n = 0;
  int64_t domain_size = 1024;
  Distribution distribution = Distribution::kIndependent;
  uint64_t seed = 1;
  /// Force distinct coordinate values per dimension (required by the
  /// sweeping vertex-walk). Needs n <= domain_size; collisions are resolved
  /// by probing to the nearest free value.
  bool distinct_coordinates = false;
  /// Relative spread of the correlated/anti-correlated noise and of cluster
  /// blobs, as a fraction of the domain.
  double noise_fraction = 0.1;
  /// Number of blobs for kClustered.
  int clusters = 8;
};

/// Generates a 2-D dataset. Returns InvalidArgument when
/// distinct_coordinates is requested with n > domain_size.
StatusOr<Dataset> GenerateDataset(const DataGenOptions& options);

/// Generates a d-dimensional dataset with the same distribution semantics.
StatusOr<DatasetNd> GenerateDatasetNd(const DataGenOptions& options, int dims);

}  // namespace skydia

#endif  // SKYDIA_SRC_DATAGEN_DISTRIBUTIONS_H_
