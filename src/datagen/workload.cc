#include "src/datagen/workload.h"

#include <algorithm>

#include "src/common/random.h"
#include "src/core/subcell_grid.h"

namespace skydia {

std::vector<Point2D> GenerateQueries(const Dataset& dataset, size_t count,
                                     uint64_t seed) {
  Rng rng(seed);
  std::vector<Point2D> queries;
  queries.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    queries.push_back(Point2D{rng.NextInt(0, dataset.domain_size() - 1),
                              rng.NextInt(0, dataset.domain_size() - 1)});
  }
  return queries;
}

namespace {

std::vector<int64_t> Distinct(const Dataset& dataset, bool use_x) {
  std::vector<int64_t> values;
  values.reserve(dataset.size());
  for (const Point2D& p : dataset.points()) {
    values.push_back(use_x ? p.x : p.y);
  }
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  return values;
}

// Representative (4x coordinates) of a random slab between consecutive
// point-grid lines.
int64_t GridSlabRep4(const std::vector<int64_t>& values, Rng* rng) {
  const size_t slabs = values.size() + 1;
  const size_t slab = rng->NextBounded(slabs);
  if (slab == 0) return 4 * values.front() - 1;
  if (slab == values.size()) return 4 * values.back() + 1;
  return 2 * (values[slab - 1] + values[slab]);
}

}  // namespace

std::vector<std::pair<int64_t, int64_t>> GenerateInteriorQueries4(
    const Dataset& dataset, size_t count, uint64_t seed,
    bool avoid_bisectors) {
  Rng rng(seed);
  std::vector<std::pair<int64_t, int64_t>> queries;
  queries.reserve(count);
  if (avoid_bisectors) {
    const SubcellGrid grid(dataset);
    for (size_t i = 0; i < count; ++i) {
      const auto sx =
          static_cast<uint32_t>(rng.NextBounded(grid.num_columns()));
      const auto sy = static_cast<uint32_t>(rng.NextBounded(grid.num_rows()));
      queries.emplace_back(grid.x_axis().Representative4(sx),
                           grid.y_axis().Representative4(sy));
    }
  } else {
    const std::vector<int64_t> xs = Distinct(dataset, /*use_x=*/true);
    const std::vector<int64_t> ys = Distinct(dataset, /*use_x=*/false);
    for (size_t i = 0; i < count; ++i) {
      queries.emplace_back(GridSlabRep4(xs, &rng), GridSlabRep4(ys, &rng));
    }
  }
  return queries;
}

}  // namespace skydia
