#include "src/datagen/real_data.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "src/common/csv.h"
#include "src/common/logging.h"
#include "src/common/random.h"

namespace skydia {

Dataset HotelExample() {
  // (distance, price); see header for the invariants these satisfy.
  const std::vector<Point2D> points = {
      {2, 95},   // p1
      {14, 98},  // p2
      {14, 92},  // p3
      {16, 94},  // p4
      {18, 93},  // p5
      {8, 84},   // p6
      {26, 65},  // p7
      {22, 85},  // p8
      {24, 88},  // p9
      {28, 84},  // p10
      {13, 77},  // p11
  };
  std::vector<std::string> labels;
  for (size_t i = 1; i <= points.size(); ++i) {
    labels.push_back("p" + std::to_string(i));
  }
  auto dataset = Dataset::Create(points, /*domain_size=*/128, labels);
  SKYDIA_CHECK(dataset.ok());
  return std::move(dataset).value();
}

Point2D HotelExampleQuery() { return Point2D{10, 80}; }

Status WriteNbaLikeCsv(const std::string& path, size_t n, uint64_t seed) {
  Rng rng(seed);
  CsvDocument doc;
  doc.rows.push_back({"label", "points_rank", "rebounds_rank"});
  for (size_t i = 0; i < n; ++i) {
    // Player skill tiers correlate scoring and rebounding ranks; ranks are
    // small integers with heavy ties, like real per-season stat tables.
    const int64_t tier = rng.NextInt(0, 511);
    const auto jitter = [&] {
      return std::llround(rng.NextGaussian() * 48.0);
    };
    const int64_t points_rank =
        std::clamp<int64_t>(tier + jitter(), 0, 511);
    const int64_t rebounds_rank =
        std::clamp<int64_t>(tier + jitter(), 0, 511);
    doc.rows.push_back({"player" + std::to_string(i),
                        std::to_string(points_rank),
                        std::to_string(rebounds_rank)});
  }
  return WriteCsvFile(path, doc);
}

StatusOr<Dataset> LoadDatasetCsv(const std::string& path,
                                 const std::string& x_column,
                                 const std::string& y_column) {
  StatusOr<CsvDocument> doc = ReadCsvFile(path);
  if (!doc.ok()) return doc.status();
  if (doc->rows.empty()) {
    return Status::InvalidArgument("CSV file has no header row: " + path);
  }
  const std::vector<std::string>& header = doc->rows[0];
  auto find_col = [&](const std::string& name) -> int {
    for (size_t i = 0; i < header.size(); ++i) {
      if (header[i] == name) return static_cast<int>(i);
    }
    return -1;
  };
  const int xc = find_col(x_column);
  const int yc = find_col(y_column);
  const int lc = find_col("label");
  if (xc < 0 || yc < 0) {
    return Status::InvalidArgument("CSV columns not found: " + x_column +
                                   ", " + y_column);
  }

  std::vector<Point2D> points;
  std::vector<std::string> labels;
  int64_t max_coord = 0;
  for (size_t r = 1; r < doc->rows.size(); ++r) {
    const std::vector<std::string>& row = doc->rows[r];
    if (static_cast<int>(row.size()) <= std::max(xc, yc)) {
      return Status::Corruption("CSV row " + std::to_string(r) +
                                " is too short");
    }
    errno = 0;
    char* end = nullptr;
    const int64_t x = std::strtoll(row[xc].c_str(), &end, 10);
    if (end == row[xc].c_str() || *end != '\0') {
      return Status::Corruption("non-integer x value in CSV row " +
                                std::to_string(r));
    }
    const int64_t y = std::strtoll(row[yc].c_str(), &end, 10);
    if (end == row[yc].c_str() || *end != '\0') {
      return Status::Corruption("non-integer y value in CSV row " +
                                std::to_string(r));
    }
    points.push_back(Point2D{x, y});
    labels.push_back(lc >= 0 && static_cast<int>(row.size()) > lc
                         ? row[lc]
                         : "row" + std::to_string(r));
    max_coord = std::max({max_coord, x, y});
  }
  int64_t domain = 1;
  while (domain <= max_coord) domain *= 2;
  return Dataset::Create(std::move(points), domain, std::move(labels));
}

}  // namespace skydia
