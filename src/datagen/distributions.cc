#include "src/datagen/distributions.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <vector>

#include "src/common/random.h"

namespace skydia {

namespace {

int64_t Clamp(int64_t v, int64_t domain) {
  return std::max<int64_t>(0, std::min<int64_t>(domain - 1, v));
}

// Draws one raw (pre-clamp) d-dimensional sample of the distribution.
void DrawRaw(const DataGenOptions& options, int dims, Rng* rng,
             const std::vector<std::vector<int64_t>>& cluster_centers,
             std::vector<int64_t>* out) {
  const int64_t domain = options.domain_size;
  const double spread = options.noise_fraction * static_cast<double>(domain);
  out->resize(dims);
  switch (options.distribution) {
    case Distribution::kIndependent: {
      for (int d = 0; d < dims; ++d) {
        (*out)[d] = rng->NextInt(0, domain - 1);
      }
      break;
    }
    case Distribution::kCorrelated: {
      const int64_t base = rng->NextInt(0, domain - 1);
      for (int d = 0; d < dims; ++d) {
        const double noise = rng->NextGaussian() * spread;
        (*out)[d] = Clamp(base + std::llround(noise), domain);
      }
      break;
    }
    case Distribution::kAnticorrelated: {
      // Points near the hyperplane sum(x) = const: draw a base position on
      // the anti-diagonal, then jitter. In 2-D this is x + y ~ domain.
      const int64_t base = rng->NextInt(0, domain - 1);
      for (int d = 0; d < dims; ++d) {
        const int64_t anchor = (d % 2 == 0) ? base : (domain - 1 - base);
        const double noise = rng->NextGaussian() * spread * 0.25;
        (*out)[d] = Clamp(anchor + std::llround(noise), domain);
      }
      break;
    }
    case Distribution::kClustered: {
      const size_t c = rng->NextBounded(cluster_centers.size());
      for (int d = 0; d < dims; ++d) {
        const double noise = rng->NextGaussian() * spread * 0.5;
        (*out)[d] = Clamp(cluster_centers[c][d] + std::llround(noise), domain);
      }
      break;
    }
  }
}

}  // namespace

const char* DistributionName(Distribution distribution) {
  switch (distribution) {
    case Distribution::kIndependent:
      return "independent";
    case Distribution::kCorrelated:
      return "correlated";
    case Distribution::kAnticorrelated:
      return "anticorrelated";
    case Distribution::kClustered:
      return "clustered";
  }
  return "?";
}

StatusOr<DatasetNd> GenerateDatasetNd(const DataGenOptions& options,
                                      int dims) {
  if (dims <= 0) {
    return Status::InvalidArgument("dims must be positive");
  }
  if (options.domain_size <= 0) {
    return Status::InvalidArgument("domain_size must be positive");
  }
  if (options.distinct_coordinates &&
      static_cast<int64_t>(options.n) > options.domain_size) {
    return Status::InvalidArgument(
        "distinct coordinates need n <= domain_size");
  }
  Rng rng(options.seed);

  std::vector<std::vector<int64_t>> centers;
  if (options.distribution == Distribution::kClustered) {
    const int k = std::max(1, options.clusters);
    centers.resize(k);
    for (auto& c : centers) {
      c.resize(dims);
      for (int d = 0; d < dims; ++d) c[d] = rng.NextInt(0, options.domain_size - 1);
    }
  }

  // Per-dimension occupancy for the distinct-coordinates mode.
  std::vector<std::unordered_set<int64_t>> used(dims);

  std::vector<int64_t> coords;
  coords.reserve(options.n * dims);
  std::vector<int64_t> sample;
  for (size_t i = 0; i < options.n; ++i) {
    DrawRaw(options, dims, &rng, centers, &sample);
    if (options.distinct_coordinates) {
      for (int d = 0; d < dims; ++d) {
        // Probe outward from the drawn value to the nearest free slot, which
        // preserves the distribution shape while guaranteeing distinctness.
        int64_t v = sample[d];
        for (int64_t delta = 0;; ++delta) {
          const int64_t up = v + delta;
          if (up < options.domain_size && !used[d].contains(up)) {
            v = up;
            break;
          }
          const int64_t down = v - delta;
          if (down >= 0 && !used[d].contains(down)) {
            v = down;
            break;
          }
        }
        used[d].insert(v);
        sample[d] = v;
      }
    }
    coords.insert(coords.end(), sample.begin(), sample.end());
  }
  return DatasetNd::Create(std::move(coords), dims, options.domain_size);
}

StatusOr<Dataset> GenerateDataset(const DataGenOptions& options) {
  StatusOr<DatasetNd> nd = GenerateDatasetNd(options, 2);
  if (!nd.ok()) return nd.status();
  std::vector<Point2D> points;
  points.reserve(nd->size());
  for (PointId id = 0; id < nd->size(); ++id) {
    points.push_back(Point2D{nd->coord(id, 0), nd->coord(id, 1)});
  }
  return Dataset::Create(std::move(points), options.domain_size);
}

}  // namespace skydia
