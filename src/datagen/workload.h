// Query workload generation for the query-latency experiments and the
// Monte-Carlo validation tests.
#ifndef SKYDIA_SRC_DATAGEN_WORKLOAD_H_
#define SKYDIA_SRC_DATAGEN_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "src/geometry/dataset.h"
#include "src/geometry/point.h"

namespace skydia {

/// Uniform random integer query points over the dataset's domain.
/// Deterministic in the seed.
std::vector<Point2D> GenerateQueries(const Dataset& dataset, size_t count,
                                     uint64_t seed);

/// Query points guaranteed to avoid every grid line of the dataset (and with
/// `avoid_bisectors`, every bisector line too) — i.e. interior positions
/// where all diagram semantics are exact. Points are returned in 4x-scaled
/// coordinates, suitable for the *At4 reference-query entry points. Queries
/// are drawn by picking a random cell/subcell and using its representative.
std::vector<std::pair<int64_t, int64_t>> GenerateInteriorQueries4(
    const Dataset& dataset, size_t count, uint64_t seed, bool avoid_bisectors);

}  // namespace skydia

#endif  // SKYDIA_SRC_DATAGEN_WORKLOAD_H_
