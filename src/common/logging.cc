#include "src/common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "src/common/trace.h"

namespace skydia {

namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

/// Default level, honoring SKYDIA_LOG_LEVEL once at startup. Unknown values
/// keep the kInfo default (logging cannot log its own misconfiguration
/// before main, so it stays silent about it).
int InitialLevel() {
  const char* env = std::getenv("SKYDIA_LOG_LEVEL");
  if (env != nullptr) {
    LogLevel level;
    if (internal::LevelFromString(env, &level)) {
      return static_cast<int>(level);
    }
  }
  return static_cast<int>(LogLevel::kInfo);
}

std::atomic<int> g_min_level{InitialLevel()};

/// Seconds since the first log line of the process, on the same monotonic
/// clock as trace spans, so "[ 12.345678 T03 ...]" lines align with a trace
/// opened next to them.
uint64_t LogEpochNanos() {
  static const uint64_t epoch = trace::NowNanos();
  return epoch;
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

namespace internal {

bool LevelFromString(const std::string& name, LogLevel* out) {
  if (name == "debug" || name == "DEBUG") {
    *out = LogLevel::kDebug;
  } else if (name == "info" || name == "INFO") {
    *out = LogLevel::kInfo;
  } else if (name == "warning" || name == "WARNING" || name == "warn" ||
             name == "WARN") {
    *out = LogLevel::kWarning;
  } else if (name == "error" || name == "ERROR") {
    *out = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

std::string LogPrefix(LogLevel level, const char* file, int line) {
  // Pin the epoch before reading the clock: on the first-ever log line the
  // epoch static initializes inside this call, and evaluating NowNanos()
  // first would time-travel the subtraction below zero.
  const uint64_t epoch = LogEpochNanos();
  const uint64_t now = trace::NowNanos();
  const uint64_t ns = now > epoch ? now - epoch : 0;
  char buf[160];
  std::snprintf(buf, sizeof(buf), "[%10.6f T%02u %-5s %s:%d] ",
                static_cast<double>(ns) / 1e9, trace::CurrentThreadId(),
                LevelName(level), file, line);
  return buf;
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >=
               g_min_level.load(std::memory_order_relaxed)) {
  if (enabled_) stream_ << LogPrefix(level, file, line);
}

LogMessage::~LogMessage() {
  if (enabled_) {
    stream_ << '\n';
    std::cerr << stream_.str();
  }
}

FatalMessage::FatalMessage(const char* file, int line, const char* condition) {
  stream_ << LogPrefix(LogLevel::kError, file, line)
          << "FATAL check failed: " << condition << " ";
}

FatalMessage::~FatalMessage() {
  stream_ << '\n';
  std::cerr << stream_.str();
  std::abort();
}

}  // namespace internal
}  // namespace skydia
