// Minimal SHA-256 implementation (FIPS 180-4).
//
// Used by the authenticated-skyline-query application (src/apps/authentication)
// to build Merkle commitments over diagram cells. Self-contained so the
// library has no external crypto dependency; validated against the FIPS test
// vectors in tests/common/sha256_test.cc.
#ifndef SKYDIA_SRC_COMMON_SHA256_H_
#define SKYDIA_SRC_COMMON_SHA256_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace skydia {

/// A 32-byte SHA-256 digest.
using Sha256Digest = std::array<uint8_t, 32>;

/// Incremental SHA-256 hasher.
///
/// Usage:
///   Sha256 h;
///   h.Update(data, len);
///   Sha256Digest d = h.Finish();
/// Finish() may be called only once; the object is then exhausted.
class Sha256 {
 public:
  Sha256();

  /// Absorbs `len` bytes.
  void Update(const void* data, size_t len);
  void Update(std::string_view s) { Update(s.data(), s.size()); }

  /// Finalizes and returns the digest.
  Sha256Digest Finish();

  /// One-shot convenience.
  static Sha256Digest Hash(const void* data, size_t len);
  static Sha256Digest Hash(std::string_view s) { return Hash(s.data(), s.size()); }

 private:
  void ProcessBlock(const uint8_t* block);

  uint32_t state_[8];
  uint64_t total_len_ = 0;
  uint8_t buffer_[64];
  size_t buffer_len_ = 0;
};

/// Renders a digest as lowercase hex.
std::string DigestToHex(const Sha256Digest& digest);

}  // namespace skydia

#endif  // SKYDIA_SRC_COMMON_SHA256_H_
