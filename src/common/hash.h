// Non-cryptographic hashing helpers used for result-set interning and the
// diagram structure statistics. For authenticated queries see sha256.h.
#ifndef SKYDIA_SRC_COMMON_HASH_H_
#define SKYDIA_SRC_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace skydia {

/// 64-bit FNV-1a over a byte range.
uint64_t Fnv1a64(const void* data, size_t len);

/// 64-bit FNV-1a over a string.
uint64_t Fnv1a64(std::string_view s);

/// Order-dependent combination of two 64-bit hashes (boost-style mix).
uint64_t HashCombine(uint64_t seed, uint64_t value);

/// Hashes a vector of 32-bit ids (the canonical interned skyline-set form).
uint64_t HashIds(const std::vector<uint32_t>& ids);

}  // namespace skydia

#endif  // SKYDIA_SRC_COMMON_HASH_H_
