#include "src/common/random.h"

#include <cassert>
#include <cmath>

namespace skydia {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling over the largest multiple of `bound` that fits in
  // 64 bits, so every residue is equally likely.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextUint64());  // full range
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Rng::NextDouble() {
  // 53 high bits -> uniform in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextGaussian() {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return spare_gaussian_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = 2.0 * NextDouble() - 1.0;
    v = 2.0 * NextDouble() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double mul = std::sqrt(-2.0 * std::log(s) / s);
  spare_gaussian_ = v * mul;
  has_spare_gaussian_ = true;
  return u * mul;
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

}  // namespace skydia
