#include "src/common/trace.h"

#include <csignal>
#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>

#include "src/common/annotations.h"

namespace skydia::trace {

namespace internal {

std::atomic<uint32_t> g_mode{kModeOff};
constinit thread_local uint32_t t_sample_countdown = 1;

namespace {

constexpr size_t kDefaultRingEvents = 16384;
constexpr uint64_t kKindSpan = 1;
constexpr uint64_t kKindCounter = 2;

std::atomic<uint64_t> g_epoch_ns{0};
std::atomic<size_t> g_ring_events{kDefaultRingEvents};
std::atomic<uint32_t> g_next_tid{1};
std::atomic<bool> g_exit_registered{false};
std::atomic<bool> g_exit_flushed{false};

// Flight-recorder state. All relaxed: the period and window are read-mostly
// hints, not synchronization.
std::atomic<uint32_t> g_sample_period{256};
std::atomic<uint64_t> g_window_ns{10'000'000'000ull};
std::atomic<bool> g_recorder_active{false};

/// Guards the buffer registry and every ThreadBuffer::name. Leaked on
/// purpose: detached threads may still emit during static destruction.
Mutex* const g_registry_mu = new Mutex;

size_t RoundUpPow2(size_t v) {
  size_t p = 8;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

/// One ring slot. Every field is a relaxed atomic word; `seq` is written
/// (release) before and after the payload so a concurrent reader can reject
/// slots caught mid-write (see the reader in SnapshotBuffer).
struct Slot {
  std::atomic<uint64_t> seq{0};   // 0 = being written; else event index + 1
  std::atomic<uint64_t> name{0};  // const char* bits (string literal)
  std::atomic<uint64_t> a{0};     // span start ns / counter sample ns
  std::atomic<uint64_t> b{0};     // span end ns / counter value
  std::atomic<uint64_t> meta{0};  // kind | depth << 8
  std::atomic<uint64_t> ctx{0};   // request-context token (0 = none)
};

/// One thread's ring. Owned by the global registry so it outlives its
/// thread (a pool worker's spans survive the pool teardown); the owning
/// thread marks it retired on exit and Reset() reclaims it.
struct ThreadBuffer {
  explicit ThreadBuffer(size_t capacity)
      : slots(capacity), mask(capacity - 1) {}

  std::vector<Slot> slots;
  size_t mask;
  std::atomic<uint64_t> head{0};
  std::atomic<bool> retired{false};
  uint32_t tid = 0;
  std::string name SKYDIA_GUARDED_BY(*g_registry_mu);
};

namespace {

/// The registry itself is guarded too: callers must hold *g_registry_mu for
/// the returned reference's whole lifetime of use.
std::vector<std::unique_ptr<ThreadBuffer>>& Registry()
    SKYDIA_REQUIRES(*g_registry_mu) {
  static auto* buffers = new std::vector<std::unique_ptr<ThreadBuffer>>;
  return *buffers;
}

thread_local int t_depth = 0;
thread_local uint32_t t_tid = 0;
thread_local uint64_t t_ctx = 0;

/// Pointer into Registry(); set lazily, cleared (and the buffer retired)
/// when the thread exits.
struct LocalHandle {
  ThreadBuffer* buffer = nullptr;
  std::string pending_name;
  ~LocalHandle() {
    if (buffer != nullptr) {
      buffer->retired.store(true, std::memory_order_release);
    }
  }
};
thread_local LocalHandle t_handle;

void Push(ThreadBuffer* buffer, const char* name, uint64_t kind, uint64_t a,
          uint64_t b, uint64_t depth, uint64_t ctx) {
  const uint64_t idx = buffer->head.load(std::memory_order_relaxed);
  Slot& slot = buffer->slots[idx & buffer->mask];
  slot.seq.store(0, std::memory_order_release);
  slot.name.store(reinterpret_cast<uint64_t>(name), std::memory_order_relaxed);
  slot.a.store(a, std::memory_order_relaxed);
  slot.b.store(b, std::memory_order_relaxed);
  slot.meta.store(kind | (depth << 8), std::memory_order_relaxed);
  slot.ctx.store(ctx, std::memory_order_relaxed);
  slot.seq.store(idx + 1, std::memory_order_release);
  buffer->head.store(idx + 1, std::memory_order_release);
}

// Client request ids are interned in a fixed ring keyed by sequence number;
// the newest kRidRingSize ids resolve exactly, older tokens fall back to a
// stable "c<seq>" placeholder. The high token bit distinguishes client
// tokens from server-generated ones (which encode the id directly).
constexpr uint64_t kClientTokenBit = uint64_t{1} << 63;
constexpr size_t kRidRingSize = 4096;

struct RidEntry {
  uint64_t seq = 0;  // 0 = never written
  std::string rid;
};

// Leaked, like the registry: a crash-handler drain may run at any point of
// process teardown.
Mutex* const g_rid_mu = new Mutex;
std::array<RidEntry, kRidRingSize>& RidRing() SKYDIA_REQUIRES(*g_rid_mu) {
  static auto* ring = new std::array<RidEntry, kRidRingSize>;
  return *ring;
}
// Ordering: relaxed — sequence allocation needs uniqueness only. Starts at
// 1 so seq 0 can mean "empty slot".
std::atomic<uint64_t> g_next_client_seq{1};
std::atomic<uint64_t> g_next_server_token{1};

#if defined(__SANITIZE_THREAD__)
#define SKYDIA_TRACE_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SKYDIA_TRACE_TSAN 1
#endif
#endif

/// The seqlock re-check after the payload reads. The acquire fence orders
/// the payload loads before the sequence re-load; TSan has no fence support
/// (GCC promotes -Wtsan under -Werror), so sanitized builds substitute an
/// acquire re-load — every access stays atomic either way, so TSan still
/// proves the protocol race-free.
bool SlotStillValid(const Slot& slot, uint64_t expected) {
#ifdef SKYDIA_TRACE_TSAN
  return slot.seq.load(std::memory_order_acquire) == expected;
#else
  std::atomic_thread_fence(std::memory_order_acquire);
  return slot.seq.load(std::memory_order_relaxed) == expected;
#endif
}

/// Drains one buffer into a track. Seqlock-style reader: load seq, read the
/// payload, acquire-fence, re-load seq — a slot overwritten mid-read fails
/// the re-check and is skipped. The registry lock covers `buffer.name` (and
/// keeps the buffer alive against a concurrent Reset()).
ThreadTrack SnapshotBuffer(const ThreadBuffer& buffer, uint64_t epoch)
    SKYDIA_REQUIRES(*g_registry_mu) {
  ThreadTrack track;
  track.tid = buffer.tid;
  track.name = buffer.name;
  const uint64_t head = buffer.head.load(std::memory_order_acquire);
  const uint64_t capacity = buffer.mask + 1;
  const uint64_t lo = head > capacity ? head - capacity : 0;
  track.dropped = lo;
  track.events.reserve(static_cast<size_t>(head - lo));
  for (uint64_t idx = lo; idx < head; ++idx) {
    const Slot& slot = buffer.slots[idx & buffer.mask];
    if (slot.seq.load(std::memory_order_acquire) != idx + 1) continue;
    const auto name = reinterpret_cast<const char*>(
        slot.name.load(std::memory_order_relaxed));
    const uint64_t a = slot.a.load(std::memory_order_relaxed);
    const uint64_t b = slot.b.load(std::memory_order_relaxed);
    const uint64_t meta = slot.meta.load(std::memory_order_relaxed);
    const uint64_t ctx = slot.ctx.load(std::memory_order_relaxed);
    if (!SlotStillValid(slot, idx + 1)) continue;

    TraceEvent event;
    event.name = name;
    event.tid = buffer.tid;
    event.ctx = ctx;
    event.start_ns = a > epoch ? a - epoch : 0;
    if ((meta & 0xff) == kKindSpan) {
      event.kind = TraceEvent::Kind::kSpan;
      event.duration_ns = b > a ? b - a : 0;
      event.depth = static_cast<uint32_t>(meta >> 8);
    } else {
      event.kind = TraceEvent::Kind::kCounter;
      event.value = b;
    }
    track.events.push_back(event);
  }
  // Start-ascending, parents (longer spans) before their children on ties.
  std::sort(track.events.begin(), track.events.end(),
            [](const TraceEvent& x, const TraceEvent& y) {
              if (x.start_ns != y.start_ns) return x.start_ns < y.start_ns;
              return x.duration_ns > y.duration_ns;
            });
  return track;
}

void AppendDouble(double value, std::string* out) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3f", value);
  out->append(buf);
}

// Crash-handler state: the dump path lives in a fixed buffer so the handler
// never allocates before deciding to dump; `g_crash_dumping` makes a
// multi-signal pileup dump at most once.
char g_crash_path[512] = {0};
std::atomic<bool> g_crash_installed{false};
std::atomic<bool> g_crash_dumping{false};
constexpr int kCrashSignals[] = {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL};

void CrashHandler(int sig) {
  if (!g_crash_dumping.exchange(true, std::memory_order_acq_rel)) {
    // Best effort (see the header contract): this allocates and locks.
    const TraceSnapshot snapshot = CollectRecent();
    (void)WriteChromeTrace(snapshot, g_crash_path);
  }
  std::signal(sig, SIG_DFL);
  ::raise(sig);
}

}  // namespace

bool ReloadSampleCountdown() {
  t_sample_countdown = std::max(1u, g_sample_period.load(
                                        std::memory_order_relaxed));
  return true;
}

ThreadBuffer* LocalBuffer() {
  if (t_handle.buffer == nullptr) {
    const size_t capacity =
        RoundUpPow2(g_ring_events.load(std::memory_order_relaxed));
    auto buffer = std::make_unique<ThreadBuffer>(capacity);
    buffer->tid = CurrentThreadId();
    MutexLock lock(*g_registry_mu);
    buffer->name = t_handle.pending_name;
    t_handle.buffer = buffer.get();
    Registry().push_back(std::move(buffer));
  }
  return t_handle.buffer;
}

void EmitSpan(ThreadBuffer* buffer, const char* name, uint64_t start_ns,
              uint64_t end_ns) {
  Push(buffer, name, kKindSpan, start_ns, end_ns,
       static_cast<uint64_t>(t_depth), t_ctx);
}

void EmitCounter(ThreadBuffer* buffer, const char* name, uint64_t value) {
  Push(buffer, name, kKindCounter, NowNanos(), value, 0, t_ctx);
}

void AppendJsonEscaped(const char* text, std::string* out) {
  for (const char* p = text; *p != '\0'; ++p) {
    const auto c = static_cast<unsigned char>(*p);
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(static_cast<char>(c));
        }
    }
  }
}

int SpanDepth() { return t_depth; }

}  // namespace internal

uint64_t NowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void SetEnabled(bool enabled) {
  using namespace internal;
  if (enabled) {
    if (g_mode.load(std::memory_order_relaxed) == kModeOff) {
      g_epoch_ns.store(NowNanos(), std::memory_order_relaxed);
    }
    g_mode.store(kModeFull, std::memory_order_relaxed);
    return;
  }
  g_mode.store(g_recorder_active.load(std::memory_order_relaxed)
                   ? kModeSampled
                   : kModeOff,
               std::memory_order_relaxed);
}

void EnableFlightRecorder(const RecorderOptions& options) {
  using namespace internal;
  g_sample_period.store(std::max(1u, options.sample_period),
                        std::memory_order_relaxed);
  g_window_ns.store(std::max<uint64_t>(1, options.window_ns),
                    std::memory_order_relaxed);
  g_recorder_active.store(true, std::memory_order_relaxed);
  if (g_mode.load(std::memory_order_relaxed) == kModeOff) {
    g_epoch_ns.store(NowNanos(), std::memory_order_relaxed);
    g_mode.store(kModeSampled, std::memory_order_relaxed);
  }
}

void DisableFlightRecorder() {
  using namespace internal;
  g_recorder_active.store(false, std::memory_order_relaxed);
  if (g_mode.load(std::memory_order_relaxed) == kModeSampled) {
    g_mode.store(kModeOff, std::memory_order_relaxed);
  }
}

bool RecorderActive() {
  return internal::g_recorder_active.load(std::memory_order_relaxed);
}

void Reset() {
  MutexLock lock(*internal::g_registry_mu);
  auto& buffers = internal::Registry();
  std::erase_if(buffers, [](const std::unique_ptr<internal::ThreadBuffer>& b) {
    return b->retired.load(std::memory_order_acquire);
  });
  for (auto& buffer : buffers) {
    buffer->head.store(0, std::memory_order_release);
    for (internal::Slot& slot : buffer->slots) {
      slot.seq.store(0, std::memory_order_release);
    }
  }
  internal::g_epoch_ns.store(NowNanos(), std::memory_order_relaxed);
}

void SetRingCapacity(size_t events) {
  internal::g_ring_events.store(events < 8 ? 8 : events,
                                std::memory_order_relaxed);
}

uint32_t CurrentThreadId() {
  if (internal::t_tid == 0) {
    internal::t_tid =
        internal::g_next_tid.fetch_add(1, std::memory_order_relaxed);
  }
  return internal::t_tid;
}

void SetThreadName(const std::string& name) {
  MutexLock lock(*internal::g_registry_mu);
  internal::t_handle.pending_name = name;
  if (internal::t_handle.buffer != nullptr) {
    internal::t_handle.buffer->name = name;
  }
}

// ---------------------------------------------------------------------------
// Request contexts.

uint64_t NextServerRequestToken() {
  return internal::g_next_server_token.fetch_add(1,
                                                 std::memory_order_relaxed);
}

uint64_t RegisterRequestId(std::string_view rid) {
  using namespace internal;
  if (rid.empty()) return 0;
  const uint64_t seq =
      g_next_client_seq.fetch_add(1, std::memory_order_relaxed);
  {
    MutexLock lock(*g_rid_mu);
    RidEntry& entry = RidRing()[seq % kRidRingSize];
    entry.seq = seq;
    entry.rid.assign(rid);
  }
  return kClientTokenBit | seq;
}

std::string RequestIdForToken(uint64_t token) {
  using namespace internal;
  if (token == 0) return "";
  if ((token & kClientTokenBit) == 0) {
    return "s" + std::to_string(token);
  }
  const uint64_t seq = token & ~kClientTokenBit;
  {
    MutexLock lock(*g_rid_mu);
    const RidEntry& entry = RidRing()[seq % kRidRingSize];
    if (entry.seq == seq) return entry.rid;
  }
  return "c" + std::to_string(seq);  // evicted from the ring
}

uint64_t CurrentRequestContext() { return internal::t_ctx; }

uint64_t SwapRequestContext(uint64_t token) {
  const uint64_t previous = internal::t_ctx;
  internal::t_ctx = token;
  return previous;
}

uint64_t Span::Begin(const char* name) {
  if (name == nullptr) return 0;
  ++internal::t_depth;
  return NowNanos();
}

void Span::End(const char* name, uint64_t start_ns) {
  --internal::t_depth;
  internal::EmitSpan(internal::LocalBuffer(), name, start_ns, NowNanos());
}

void Counter(const char* name, uint64_t value) {
  if (internal::g_mode.load(std::memory_order_relaxed) ==
      internal::kModeOff) {
    return;
  }
  internal::EmitCounter(internal::LocalBuffer(), name, value);
}

TraceSnapshot Collect() {
  const uint64_t epoch =
      internal::g_epoch_ns.load(std::memory_order_relaxed);
  TraceSnapshot snapshot;
  MutexLock lock(*internal::g_registry_mu);
  for (const auto& buffer : internal::Registry()) {
    ThreadTrack track = internal::SnapshotBuffer(*buffer, epoch);
    snapshot.total_events += track.events.size();
    snapshot.total_dropped += track.dropped;
    snapshot.threads.push_back(std::move(track));
  }
  std::sort(snapshot.threads.begin(), snapshot.threads.end(),
            [](const ThreadTrack& a, const ThreadTrack& b) {
              return a.tid < b.tid;
            });
  return snapshot;
}

TraceSnapshot CollectRecent() {
  const uint64_t epoch =
      internal::g_epoch_ns.load(std::memory_order_relaxed);
  const uint64_t window = internal::g_window_ns.load(std::memory_order_relaxed);
  const uint64_t now = NowNanos();
  const uint64_t now_rel = now > epoch ? now - epoch : 0;
  const uint64_t cutoff = now_rel > window ? now_rel - window : 0;
  TraceSnapshot snapshot = Collect();
  if (cutoff == 0) return snapshot;
  snapshot.total_events = 0;
  for (ThreadTrack& track : snapshot.threads) {
    std::erase_if(track.events, [cutoff](const TraceEvent& event) {
      return event.start_ns + event.duration_ns < cutoff;
    });
    snapshot.total_events += track.events.size();
  }
  return snapshot;
}

std::string ToChromeTraceJson(const TraceSnapshot& snapshot) {
  std::string out;
  out.reserve(256 + snapshot.total_events * 96);
  out.append("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
  bool first = true;
  const auto comma = [&] {
    if (!first) out.push_back(',');
    first = false;
  };
  for (const ThreadTrack& track : snapshot.threads) {
    if (!track.name.empty()) {
      comma();
      out.append(
          "{\"ph\":\"M\",\"pid\":1,\"name\":\"thread_name\",\"tid\":");
      out.append(std::to_string(track.tid));
      out.append(",\"args\":{\"name\":\"");
      internal::AppendJsonEscaped(track.name.c_str(), &out);
      out.append("\"}}");
    }
    for (const TraceEvent& event : track.events) {
      comma();
      if (event.kind == TraceEvent::Kind::kSpan) {
        out.append("{\"ph\":\"X\",\"pid\":1,\"tid\":");
        out.append(std::to_string(track.tid));
        out.append(",\"cat\":\"skydia\",\"name\":\"");
        internal::AppendJsonEscaped(event.name, &out);
        out.append("\",\"ts\":");
        internal::AppendDouble(static_cast<double>(event.start_ns) / 1e3,
                               &out);
        out.append(",\"dur\":");
        internal::AppendDouble(static_cast<double>(event.duration_ns) / 1e3,
                               &out);
        if (event.ctx != 0) {
          out.append(",\"args\":{\"rid\":\"");
          internal::AppendJsonEscaped(RequestIdForToken(event.ctx).c_str(),
                                      &out);
          out.append("\"}");
        }
        out.append("}");
      } else {
        out.append("{\"ph\":\"C\",\"pid\":1,\"tid\":");
        out.append(std::to_string(track.tid));
        out.append(",\"name\":\"");
        internal::AppendJsonEscaped(event.name, &out);
        out.append("\",\"ts\":");
        internal::AppendDouble(static_cast<double>(event.start_ns) / 1e3,
                               &out);
        out.append(",\"args\":{\"value\":");
        out.append(std::to_string(event.value));
        out.append("}}");
      }
    }
  }
  out.append("]}");
  return out;
}

Status WriteChromeTrace(const TraceSnapshot& snapshot,
                        const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::Internal("cannot open trace output " + path);
  }
  const std::string json = ToChromeTraceJson(snapshot);
  const size_t written = std::fwrite(json.data(), 1, json.size(), file);
  const int closed = std::fclose(file);
  if (written != json.size() || closed != 0) {
    return Status::Internal("short write to trace output " + path);
  }
  return Status::OK();
}

Status InstallCrashHandler(const std::string& path) {
  using namespace internal;
  if (path.empty() || path.size() >= sizeof(g_crash_path)) {
    return Status::InvalidArgument("crash-trace path empty or too long");
  }
  std::memcpy(g_crash_path, path.c_str(), path.size() + 1);
  if (g_crash_installed.exchange(true, std::memory_order_acq_rel)) {
    return Status::OK();  // already installed; the new path took effect
  }
  struct sigaction action{};
  action.sa_handler = &CrashHandler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  for (const int sig : kCrashSignals) {
    if (::sigaction(sig, &action, nullptr) != 0) {
      return Status::Internal("sigaction failed for signal " +
                              std::to_string(sig));
    }
  }
  return Status::OK();
}

std::string RenderTextSummary(const TraceSnapshot& snapshot) {
  struct SpanAgg {
    uint64_t count = 0;
    uint64_t total_ns = 0;
    uint64_t max_ns = 0;
  };
  struct CounterAgg {
    uint64_t samples = 0;
    uint64_t last = 0;
  };
  std::map<std::string, SpanAgg> spans;
  std::map<std::string, CounterAgg> counters;
  for (const ThreadTrack& track : snapshot.threads) {
    for (const TraceEvent& event : track.events) {
      if (event.kind == TraceEvent::Kind::kSpan) {
        SpanAgg& agg = spans[event.name];
        ++agg.count;
        agg.total_ns += event.duration_ns;
        agg.max_ns = std::max(agg.max_ns, event.duration_ns);
      } else {
        CounterAgg& agg = counters[event.name];
        ++agg.samples;
        agg.last = event.value;
      }
    }
  }

  std::string out;
  out.append("trace summary: ")
      .append(std::to_string(snapshot.total_events))
      .append(" events, ")
      .append(std::to_string(snapshot.total_dropped))
      .append(" dropped\n");
  // Span names by descending total time: the profile view.
  std::vector<std::pair<std::string, SpanAgg>> by_total(spans.begin(),
                                                        spans.end());
  std::sort(by_total.begin(), by_total.end(),
            [](const auto& a, const auto& b) {
              return a.second.total_ns > b.second.total_ns;
            });
  char line[256];
  for (const auto& [name, agg] : by_total) {
    std::snprintf(line, sizeof(line),
                  "  span %-28s count=%-8llu total_ms=%-12.3f max_ms=%.3f\n",
                  name.c_str(),
                  static_cast<unsigned long long>(agg.count),
                  static_cast<double>(agg.total_ns) / 1e6,
                  static_cast<double>(agg.max_ns) / 1e6);
    out.append(line);
  }
  for (const auto& [name, agg] : counters) {
    std::snprintf(line, sizeof(line),
                  "  counter %-25s samples=%-6llu last=%llu\n", name.c_str(),
                  static_cast<unsigned long long>(agg.samples),
                  static_cast<unsigned long long>(agg.last));
    out.append(line);
  }
  for (const ThreadTrack& track : snapshot.threads) {
    std::snprintf(line, sizeof(line),
                  "  thread T%u%s%s%s: events=%zu dropped=%llu\n", track.tid,
                  track.name.empty() ? "" : " (",
                  track.name.c_str(),
                  track.name.empty() ? "" : ")",
                  track.events.size(),
                  static_cast<unsigned long long>(track.dropped));
    out.append(line);
  }
  return out;
}

void FlushExitSummary() {
  if (!Enabled()) return;
  if (internal::g_exit_flushed.exchange(true, std::memory_order_acq_rel)) {
    return;
  }
  const std::string summary = RenderTextSummary(Collect());
  std::fwrite(summary.data(), 1, summary.size(), stderr);
}

void RegisterExitSummary() {
  if (internal::g_exit_registered.exchange(true, std::memory_order_acq_rel)) {
    return;
  }
  std::atexit([] { FlushExitSummary(); });
}

}  // namespace skydia::trace
