// Minimal leveled logging and check macros.
//
// Library code uses SKYDIA_CHECK for invariants whose violation indicates a
// bug (terminates with a message), and the LOG(level) stream for diagnostics.
// Verbosity is controlled globally; benchmarks silence INFO by default.
#ifndef SKYDIA_SRC_COMMON_LOGGING_H_
#define SKYDIA_SRC_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace skydia {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level that is emitted. The startup default is kInfo,
/// overridable via the SKYDIA_LOG_LEVEL environment variable
/// (debug|info|warning|error, case-insensitive; unknown values are ignored).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Parses a SKYDIA_LOG_LEVEL spelling. Returns false (and leaves `out`
/// untouched) for unknown names. Exposed for the unit tests.
bool LevelFromString(const std::string& name, LogLevel* out);

/// The line prefix "[<seconds since first log> T<thread id> LEVEL file:line] "
/// — the timestamp is monotonic and the thread id is trace::CurrentThreadId(),
/// so log lines correlate with trace tracks. Exposed for the unit tests.
std::string LogPrefix(LogLevel level, const char* file, int line);

/// Accumulates one log line and emits it to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

/// Emits the message and aborts. Used by SKYDIA_CHECK.
class FatalMessage {
 public:
  FatalMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalMessage();

  template <typename T>
  FatalMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace skydia

#define SKYDIA_LOG(level)                                                 \
  ::skydia::internal::LogMessage(::skydia::LogLevel::k##level, __FILE__, \
                                 __LINE__)

// Invariant check: always on (release builds included); diagram algorithms
// are cheap enough that the branch cost is negligible next to correctness.
#define SKYDIA_CHECK(condition)                                            \
  (condition) ? (void)0                                                    \
              : (void)::skydia::internal::FatalMessage(__FILE__, __LINE__, \
                                                       #condition)

#define SKYDIA_CHECK_EQ(a, b) SKYDIA_CHECK((a) == (b))
#define SKYDIA_CHECK_NE(a, b) SKYDIA_CHECK((a) != (b))
#define SKYDIA_CHECK_LT(a, b) SKYDIA_CHECK((a) < (b))
#define SKYDIA_CHECK_LE(a, b) SKYDIA_CHECK((a) <= (b))
#define SKYDIA_CHECK_GT(a, b) SKYDIA_CHECK((a) > (b))
#define SKYDIA_CHECK_GE(a, b) SKYDIA_CHECK((a) >= (b))

#endif  // SKYDIA_SRC_COMMON_LOGGING_H_
