// Minimal fixed-size thread pool for the parallel diagram constructions
// (the direction the paper's journal extension develops). Tasks are
// fire-and-forget; WaitIdle() barriers until everything submitted so far has
// run.
#ifndef SKYDIA_SRC_COMMON_THREAD_POOL_H_
#define SKYDIA_SRC_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "src/common/annotations.h"

namespace skydia {

/// Fixed-size worker pool. Exceptions must not escape tasks (the library is
/// exception-free); a task that throws terminates the process.
///
/// Synchronization protocol, compiler-checked via the SKYDIA_GUARDED_BY
/// annotations below (a Clang -Wthread-safety build rejects any access
/// outside `mu_`; the TSan CI job cross-checks the dynamic side via
/// tests/core/parallel_stress_test.cc): every shared member — `queue_`,
/// `active_`, `shutdown_` — is read and written only under `mu_`. Task side
/// effects are published to the caller through a mutex handshake: a worker
/// finishes a task, then takes `mu_` to decrement `active_`; WaitIdle()
/// observes `active_ == 0` under the same mutex, so everything the task wrote
/// happens-before anything the caller reads after WaitIdle() returns. Tasks
/// themselves synchronize with nothing — they must write disjoint data or
/// bring their own atomics.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (>= 1).
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool() SKYDIA_EXCLUDES(mu_);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues a task.
  void Submit(std::function<void()> task) SKYDIA_EXCLUDES(mu_);

  /// Blocks until the queue is empty and all workers are idle.
  void WaitIdle() SKYDIA_EXCLUDES(mu_);

  /// Convenience: runs fn(i) for i in [0, count) across the pool and waits.
  void ParallelFor(size_t count, const std::function<void(size_t)>& fn)
      SKYDIA_EXCLUDES(mu_);

 private:
  void WorkerLoop(size_t worker_index) SKYDIA_EXCLUDES(mu_);

  Mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_ SKYDIA_GUARDED_BY(mu_);
  size_t active_ SKYDIA_GUARDED_BY(mu_) = 0;
  bool shutdown_ SKYDIA_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;  // written only by the constructor
};

}  // namespace skydia

#endif  // SKYDIA_SRC_COMMON_THREAD_POOL_H_
