#include "src/common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <utility>

#include "src/common/logging.h"
#include "src/common/trace.h"

namespace skydia {

// Condition waits are written as explicit while loops around
// cv.wait(lock.native()) instead of the predicate-lambda overload: the
// predicate then executes in the enclosing scope, where -Wthread-safety can
// see the MutexLock and prove the guarded reads legal (a lambda body is
// opaque to the analysis).

ThreadPool::ThreadPool(size_t num_threads) {
  SKYDIA_CHECK_GE(num_threads, 1u);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  // Workers drain the queue before exiting (WorkerLoop only returns on an
  // empty queue), so everything submitted before destruction still runs.
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    SKYDIA_CHECK(!shutdown_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::WaitIdle() {
  MutexLock lock(mu_);
  while (!(queue_.empty() && active_ == 0)) idle_.wait(lock.native());
}

void ThreadPool::ParallelFor(size_t count,
                             const std::function<void(size_t)>& fn) {
  if (count == 0) return;
  // Chunked dynamic scheduling: one shared counter, each worker grabs the
  // next index. Chunk size 1 is fine — diagram rows are coarse tasks.
  //
  // `relaxed` is intentional: the counter only dispenses indices and carries
  // no data. Publication of fn(i)'s writes to the caller rides the mu_
  // handshake inside WaitIdle(), not this atomic. Capturing `fn` by reference
  // is safe for the same reason — WaitIdle() barriers before it goes out of
  // scope.
  auto next = std::make_shared<std::atomic<size_t>>(0);
  const size_t tasks = std::min(count, num_threads());
  for (size_t t = 0; t < tasks; ++t) {
    Submit([next, count, &fn] {
      for (;;) {
        const size_t i = next->fetch_add(1, std::memory_order_relaxed);
        if (i >= count) return;
        fn(i);
      }
    });
  }
  WaitIdle();
}

void ThreadPool::WorkerLoop(size_t worker_index) {
  // Name the trace track up front so stripe spans land on a readable track
  // even when the pool outlives many ParallelFor calls.
  trace::SetThreadName("pool-worker-" + std::to_string(worker_index));
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(mu_);
      while (!shutdown_ && queue_.empty()) work_available_.wait(lock.native());
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      MutexLock lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace skydia
