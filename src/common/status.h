// Lightweight error-handling vocabulary for the skydia library.
//
// The library does not use exceptions (see DESIGN.md / style notes). Fallible
// operations return Status, or StatusOr<T> when they produce a value. Both are
// cheap value types: the OK state carries no allocation.
#ifndef SKYDIA_SRC_COMMON_STATUS_H_
#define SKYDIA_SRC_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace skydia {

/// Error categories used across the library. Mirrors the usual database-style
/// status vocabulary (cf. rocksdb::Status) trimmed to what skydia needs.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kCorruption,
  kUnimplemented,
  kInternal,
  kAlreadyExists,      ///< a uniqueness invariant rejected the new entity
  kResourceExhausted,  ///< a bounded resource is full; retry after draining
};

/// Returns a stable human-readable name for `code` ("OK", "InvalidArgument"...).
const char* StatusCodeToString(StatusCode code);

/// Result of an operation that can fail. Immutable after construction.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<Code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Either a value of type T or a non-OK Status explaining why there is none.
/// Accessing value() on an error state aborts in debug builds.
template <typename T>
class StatusOr {
 public:
  /// Implicit from a value: the common "return computed_thing;" case.
  StatusOr(T value) : status_(Status::OK()), value_(std::move(value)) {}
  /// Implicit from an error status. `status` must not be OK.
  StatusOr(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "StatusOr constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace skydia

#endif  // SKYDIA_SRC_COMMON_STATUS_H_
