// Deterministic pseudo-random number generation for workload synthesis.
//
// Benchmarks and tests must be reproducible across runs and machines, so the
// library ships its own generator (splitmix64 seeding a xoshiro256**) instead
// of relying on implementation-defined std::default_random_engine behaviour.
#ifndef SKYDIA_SRC_COMMON_RANDOM_H_
#define SKYDIA_SRC_COMMON_RANDOM_H_

#include <cstdint>

namespace skydia {

/// xoshiro256** PRNG with splitmix64 seeding. Deterministic across platforms.
/// Not thread-safe; use one instance per thread.
class Rng {
 public:
  /// Seeds the generator. The same seed always yields the same stream.
  explicit Rng(uint64_t seed = kDefaultSeed);

  /// Returns the next 64 uniformly random bits.
  uint64_t NextUint64();

  /// Returns a uniform integer in [0, bound). `bound` must be > 0.
  /// Uses rejection sampling, so the result is exactly uniform.
  uint64_t NextBounded(uint64_t bound);

  /// Returns a uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Returns a uniform double in [0, 1).
  double NextDouble();

  /// Returns a standard normal variate (Box-Muller).
  double NextGaussian();

  /// Returns true with probability `p` (clamped to [0, 1]).
  bool NextBernoulli(double p);

  static constexpr uint64_t kDefaultSeed = 0x9E3779B97F4A7C15ull;

 private:
  uint64_t state_[4];
  bool has_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace skydia

#endif  // SKYDIA_SRC_COMMON_RANDOM_H_
