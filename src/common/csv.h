// Small CSV reader/writer for dataset files (real-data loaders, experiment
// output). Supports quoted fields with embedded commas/quotes/newlines; does
// not attempt full RFC 4180 edge cases beyond that.
#ifndef SKYDIA_SRC_COMMON_CSV_H_
#define SKYDIA_SRC_COMMON_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"

namespace skydia {

/// A parsed CSV document: rows of string fields. Row 0 is the header when the
/// file has one; this type does not interpret headers itself.
struct CsvDocument {
  std::vector<std::vector<std::string>> rows;
};

/// Parses CSV text. Returns Corruption on unterminated quotes.
StatusOr<CsvDocument> ParseCsv(std::string_view text);

/// Reads and parses a CSV file. Returns NotFound if unreadable.
StatusOr<CsvDocument> ReadCsvFile(const std::string& path);

/// Serializes rows to CSV text, quoting fields only when necessary.
std::string WriteCsv(const CsvDocument& doc);

/// Writes rows to a file. Returns Internal on I/O failure.
Status WriteCsvFile(const std::string& path, const CsvDocument& doc);

}  // namespace skydia

#endif  // SKYDIA_SRC_COMMON_CSV_H_
