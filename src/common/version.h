// Library version and build stamps, surfaced in `skydia_build_info` on the
// /metrics endpoint and in the BENCH_*.json baselines. Bump kVersion with
// each released milestone (it tracks the PR sequence, not semver promises).
#ifndef SKYDIA_SRC_COMMON_VERSION_H_
#define SKYDIA_SRC_COMMON_VERSION_H_

namespace skydia {

inline constexpr const char* kVersion = "0.6.0";

/// The commit the binary was built from: SKYDIA_GIT_COMMIT when the build
/// system provides it, else "unknown" (local builds).
inline const char* BuildCommit() {
#ifdef SKYDIA_GIT_COMMIT
  return SKYDIA_GIT_COMMIT;
#else
  return "unknown";
#endif
}

}  // namespace skydia

#endif  // SKYDIA_SRC_COMMON_VERSION_H_
