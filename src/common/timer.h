// Wall-clock stopwatch for the experiment harnesses that report paper-style
// tables (google-benchmark handles the microbenchmarks; this is for one-shot
// end-to-end build timings).
#ifndef SKYDIA_SRC_COMMON_TIMER_H_
#define SKYDIA_SRC_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace skydia {

/// Monotonic stopwatch. Starts on construction; Restart() resets.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction/Restart in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in whole milliseconds.
  int64_t ElapsedMillis() const {
    return std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace skydia

#endif  // SKYDIA_SRC_COMMON_TIMER_H_
