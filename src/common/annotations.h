// Compile-time concurrency contracts: Clang -Wthread-safety attribute
// macros and an annotated Mutex/MutexLock wrapper pair.
//
// The prose locking protocols of thread_pool.h, trace.h and the serve stack
// become compiler-checked here: every mutex-guarded member is declared
// SKYDIA_GUARDED_BY its mutex, every function that needs or rejects a held
// lock says so in its signature, and a Clang build with -Wthread-safety
// -Werror (the `thread-safety` preset / the static-analysis CI job) refuses
// to compile an access outside the contract. Under GCC (which has no
// thread-safety analysis) every macro expands to nothing and the wrappers
// cost exactly what std::mutex/std::unique_lock cost.
//
// Project rule (enforced by tools/lint/check_concurrency.py): raw
// std::mutex / std::lock_guard / std::unique_lock / std::scoped_lock are
// banned outside this header — lock state the analysis cannot see is lock
// state nobody can check.
//
// SKYDIA_REACTOR_ONLY marks functions that run exclusively on the serve
// daemon's event-loop thread (src/serve/server.h). It is a contract in two
// directions: such functions may touch reactor-owned state without locks,
// and they must never block (no ThreadPool::Submit + WaitIdle, no
// disk/sleep syscalls) — the lint checks the second half from the source.
#ifndef SKYDIA_SRC_COMMON_ANNOTATIONS_H_
#define SKYDIA_SRC_COMMON_ANNOTATIONS_H_

#include <mutex>  // lint:allow(raw-mutex) -- the one sanctioned wrapper site

#if defined(__clang__) && (!defined(SWIG))
#define SKYDIA_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define SKYDIA_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

/// Declares that a member is protected by the given capability (mutex):
/// reads require the lock held shared, writes require it held exclusively.
#define SKYDIA_GUARDED_BY(x) SKYDIA_THREAD_ANNOTATION(guarded_by(x))

/// Like SKYDIA_GUARDED_BY for pointer members: the *pointee* is protected.
#define SKYDIA_PT_GUARDED_BY(x) SKYDIA_THREAD_ANNOTATION(pt_guarded_by(x))

/// The function must be called with the listed capabilities held.
#define SKYDIA_REQUIRES(...) \
  SKYDIA_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// The function must be called with the listed capabilities NOT held
/// (deadlock guard for functions that take the lock themselves).
#define SKYDIA_EXCLUDES(...) \
  SKYDIA_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// The function acquires the capability and holds it on return.
#define SKYDIA_ACQUIRE(...) \
  SKYDIA_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// The function releases a held capability.
#define SKYDIA_RELEASE(...) \
  SKYDIA_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// The function acquires the capability iff it returns `result`.
#define SKYDIA_TRY_ACQUIRE(result, ...) \
  SKYDIA_THREAD_ANNOTATION(try_acquire_capability(result, __VA_ARGS__))

/// Declares a type as a lockable capability ("mutex" names it in errors).
#define SKYDIA_CAPABILITY(name) SKYDIA_THREAD_ANNOTATION(capability(name))

/// Declares an RAII type whose constructor acquires and destructor releases.
#define SKYDIA_SCOPED_CAPABILITY SKYDIA_THREAD_ANNOTATION(scoped_lockable)

/// The function returns a reference to the named capability.
#define SKYDIA_RETURN_CAPABILITY(x) \
  SKYDIA_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch: the function intentionally steps outside the analysis
/// (must carry a comment saying why; the lint flags bare uses).
#define SKYDIA_NO_THREAD_SAFETY_ANALYSIS \
  SKYDIA_THREAD_ANNOTATION(no_thread_safety_analysis)

/// Marks a function that runs exclusively on the serve reactor's event-loop
/// thread. Reactor-owned state needs no locks inside, and the function must
/// never block (tools/lint/check_concurrency.py enforces: no
/// ThreadPool::Submit/WaitIdle/ParallelFor, no sleeps, no buffered disk
/// I/O). Under Clang the marker also lands in the AST as an `annotate`
/// attribute, so clang-query tooling can match it structurally.
#if defined(__clang__)
#define SKYDIA_REACTOR_ONLY __attribute__((annotate("skydia::reactor_only")))
#else
#define SKYDIA_REACTOR_ONLY
#endif

namespace skydia {

/// std::mutex with the capability annotations the analysis needs. Same
/// storage, same cost; Lock/Unlock tell -Wthread-safety what changes hands.
class SKYDIA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() SKYDIA_ACQUIRE() { mu_.lock(); }
  void Unlock() SKYDIA_RELEASE() { mu_.unlock(); }
  bool TryLock() SKYDIA_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The wrapped mutex, for std::condition_variable interop only (via
  /// MutexLock::native()); everything else goes through Lock/Unlock.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// Scoped lock over Mutex — the project's replacement for both
/// std::lock_guard and std::unique_lock. Exposes the underlying
/// std::unique_lock for condition-variable waits: the analysis models the
/// capability as held across a wait, which is exactly the guarantee
/// cv.wait() restores before returning.
class SKYDIA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SKYDIA_ACQUIRE(mu) : lock_(mu.native()) {}
  ~MutexLock() SKYDIA_RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// For `cv.wait(lock.native(), pred)`. The wait releases and reacquires
  /// the mutex internally; on return the capability is held again, matching
  /// what the analysis assumed throughout.
  std::unique_lock<std::mutex>& native() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

}  // namespace skydia

#endif  // SKYDIA_SRC_COMMON_ANNOTATIONS_H_
