// Low-overhead in-process tracing: RAII scoped spans and named counters
// recorded into per-thread lock-free ring buffers, drained on demand into a
// Chrome trace-event / Perfetto-compatible JSON export or a per-span text
// summary.
//
// Design constraints, in priority order:
//   1. Disabled tracing must be invisible on the serving hot path. A span in
//      a disabled build of the code costs one relaxed atomic load and one
//      predictable branch — no clock read, no allocation, no store
//      (bench_query_throughput's BM_TraceSpanDisabled pins this down).
//   2. Enabled tracing never blocks the traced thread. Each thread writes
//      events to a private fixed-capacity ring buffer; when the ring wraps,
//      the oldest events are overwritten (newest-wins) and a drop count is
//      kept. There is no lock on the emission path.
//   3. Draining may race with emission (the serve daemon exports /metrics
//      and traces while connections are live). Every slot field is a relaxed
//      atomic word and each slot carries a sequence number written around
//      the payload, so a reader either observes a consistent event or skips
//      the slot — torn events are rejected, never surfaced. This protocol is
//      exercised under TSan by tests/core/parallel_stress_test.cc.
//
// Span names must be string literals (or otherwise immortal): the ring
// stores the pointer, not a copy. Counters follow the same rule.
//
// Typical use:
//   trace::SetEnabled(true);
//   { SKYDIA_TRACE_SPAN("build.sweep"); ... }
//   trace::Counter("cells", grid.num_cells());
//   const trace::TraceSnapshot snap = trace::Collect();
//   trace::WriteChromeTrace(snap, "trace.json");   // open in ui.perfetto.dev
//   std::cerr << trace::RenderTextSummary(snap);
#ifndef SKYDIA_SRC_COMMON_TRACE_H_
#define SKYDIA_SRC_COMMON_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace skydia::trace {

namespace internal {
/// The global on/off flag, exposed for the inline fast path below.
extern std::atomic<bool> g_enabled;

struct ThreadBuffer;
/// The calling thread's ring buffer, created (and registered) on first use.
ThreadBuffer* LocalBuffer();
void EmitSpan(ThreadBuffer* buffer, const char* name, uint64_t start_ns,
              uint64_t end_ns);
void EmitCounter(ThreadBuffer* buffer, const char* name, uint64_t value);
/// Appends `text` to `out` with Chrome-trace JSON string escaping (quotes,
/// backslashes, control characters). Exposed for the unit tests.
void AppendJsonEscaped(const char* text, std::string* out);

/// Current depth of open spans on this thread (for nesting tests).
int SpanDepth();
}  // namespace internal

/// Whether tracing is currently recording. The fast path: one relaxed load.
inline bool Enabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}

/// Turns recording on or off. Enabling (re)starts the trace epoch that
/// exported timestamps are relative to. Thread-safe.
void SetEnabled(bool enabled);

/// Clears all recorded events and drop counts, releases buffers of threads
/// that have exited, and restarts the epoch. Not safe to call concurrently
/// with emission from other threads (callers quiesce first).
void Reset();

/// Ring capacity (events per thread) for buffers created after this call;
/// rounded up to a power of two, default 16384. Tests use tiny rings to
/// exercise wraparound. Call before the threads under test emit.
void SetRingCapacity(size_t events);

/// Small dense id of the calling thread, assigned on first use, shared with
/// the logging prefix so log lines correlate with trace tracks.
uint32_t CurrentThreadId();

/// Names the calling thread's track in exports ("pool-worker-3"). Cheap;
/// safe to call whether or not tracing is enabled.
void SetThreadName(const std::string& name);

/// Monotonic nanosecond clock used for all trace timestamps.
uint64_t NowNanos();

/// RAII scoped span. Records [construction, destruction) on the calling
/// thread under `name` (a string literal). When tracing is disabled at
/// construction the object is inert, including at destruction.
class Span {
 public:
  explicit Span(const char* name)
      : name_(Enabled() ? name : nullptr), start_(Begin(name_)) {}
  ~Span() {
    if (name_ != nullptr) End(name_, start_);
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  static uint64_t Begin(const char* name);
  static void End(const char* name, uint64_t start_ns);

  const char* name_;
  uint64_t start_;
};

/// Records a named counter sample at the current time. No-op when disabled.
void Counter(const char* name, uint64_t value);

/// One drained event. Spans carry [start_ns, start_ns + duration_ns) and
/// their nesting depth at emission; counters carry a value sampled at
/// start_ns with duration 0.
struct TraceEvent {
  enum class Kind { kSpan, kCounter };
  const char* name = nullptr;
  Kind kind = Kind::kSpan;
  uint64_t start_ns = 0;     // relative to the trace epoch
  uint64_t duration_ns = 0;  // spans only
  uint64_t value = 0;        // counters only
  uint32_t tid = 0;
  uint32_t depth = 0;  // spans only: open ancestors when the span closed
};

/// One thread's drained track.
struct ThreadTrack {
  uint32_t tid = 0;
  std::string name;          // "" when never named
  uint64_t dropped = 0;      // events lost to ring wraparound
  std::vector<TraceEvent> events;  // ascending start_ns
};

/// Everything recorded so far, drained without stopping emission.
struct TraceSnapshot {
  std::vector<ThreadTrack> threads;  // ascending tid
  uint64_t total_events = 0;
  uint64_t total_dropped = 0;
};

/// Drains every thread's ring into a snapshot. Safe to call while other
/// threads keep emitting (in-flight events may be missed or half-written
/// slots skipped; nothing torn is returned).
TraceSnapshot Collect();

/// Renders the snapshot in the Chrome trace-event JSON format (complete "X"
/// events plus thread-name metadata), loadable in ui.perfetto.dev and
/// chrome://tracing.
std::string ToChromeTraceJson(const TraceSnapshot& snapshot);

/// Writes ToChromeTraceJson(snapshot) to `path`.
Status WriteChromeTrace(const TraceSnapshot& snapshot,
                        const std::string& path);

/// Per-span-name aggregation (count, total, max) plus per-thread track
/// lines — the human-readable companion of the JSON export.
std::string RenderTextSummary(const TraceSnapshot& snapshot);

/// Registers an atexit hook that, at process exit, writes
/// RenderTextSummary(Collect()) to stderr if tracing is still enabled and
/// the summary was not already flushed. Idempotent; FlushExitSummary() runs
/// the same flush early (the serve daemon calls it on clean shutdown so a
/// SIGTERM'd process and a normal exit report identically).
void RegisterExitSummary();
void FlushExitSummary();

}  // namespace skydia::trace

#define SKYDIA_TRACE_CONCAT_INNER(a, b) a##b
#define SKYDIA_TRACE_CONCAT(a, b) SKYDIA_TRACE_CONCAT_INNER(a, b)
/// Scoped span covering the rest of the enclosing block.
#define SKYDIA_TRACE_SPAN(name) \
  ::skydia::trace::Span SKYDIA_TRACE_CONCAT(skydia_trace_span_, __LINE__)(name)

#endif  // SKYDIA_SRC_COMMON_TRACE_H_
