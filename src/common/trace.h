// Low-overhead in-process tracing: RAII scoped spans and named counters
// recorded into per-thread lock-free ring buffers, drained on demand into a
// Chrome trace-event / Perfetto-compatible JSON export or a per-span text
// summary.
//
// Design constraints, in priority order:
//   1. Non-recording tracing must be invisible on the serving hot path. A
//      span with recording off costs one relaxed atomic load and one
//      predictable branch — no clock read, no allocation, no store; in the
//      sampled flight-recorder mode it adds one thread-local decrement
//      (bench_query_throughput's BM_TraceSpanDisabled/BM_TraceSpanSampled
//      pin both fast paths down).
//   2. Enabled tracing never blocks the traced thread. Each thread writes
//      events to a private fixed-capacity ring buffer; when the ring wraps,
//      the oldest events are overwritten (newest-wins) and a drop count is
//      kept. There is no lock on the emission path.
//   3. Draining may race with emission (the serve daemon exports /metrics
//      and traces while connections are live). Every slot field is a relaxed
//      atomic word and each slot carries a sequence number written around
//      the payload, so a reader either observes a consistent event or skips
//      the slot — torn events are rejected, never surfaced. This protocol is
//      exercised under TSan by tests/core/parallel_stress_test.cc.
//
// Recording modes. The recorder is a three-state machine:
//   * off      — spans are inert (the historical default outside serving).
//   * sampled  — the always-on flight recorder: every Nth span per thread is
//                recorded, and CollectRecent() drains only the last
//                window_ns of events. EnableFlightRecorder() enters this
//                mode; the serve daemon turns it on by default.
//   * full     — every span records; SetEnabled(true), the --trace flag.
// SetEnabled(false) falls back to sampled (not off) while the flight
// recorder is active, so an operator toggling --trace never loses the
// always-on window.
//
// Request contexts. A 64-bit token names one request id; spans emitted
// while a ScopedRequestContext is on the stack carry the token and export
// with "args":{"rid":"..."} so one request's spans correlate across the
// reactor, worker, and shard threads. Server-generated ids encode the id in
// the token itself ("s<token>"); client-supplied ids intern their string in
// a small eviction ring.
//
// Span names must be string literals (or otherwise immortal): the ring
// stores the pointer, not a copy. Counters follow the same rule.
//
// Typical use:
//   trace::SetEnabled(true);
//   { SKYDIA_TRACE_SPAN("build.sweep"); ... }
//   trace::Counter("cells", grid.num_cells());
//   const trace::TraceSnapshot snap = trace::Collect();
//   trace::WriteChromeTrace(snap, "trace.json");   // open in ui.perfetto.dev
//   std::cerr << trace::RenderTextSummary(snap);
#ifndef SKYDIA_SRC_COMMON_TRACE_H_
#define SKYDIA_SRC_COMMON_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"

namespace skydia::trace {

namespace internal {
/// Recording mode, exposed for the inline fast path below.
/// Ordering: relaxed loads/stores only — the mode is a hint, and the slot
/// seqlock (not the mode flag) is what makes drained events consistent.
inline constexpr uint32_t kModeOff = 0;
inline constexpr uint32_t kModeSampled = 1;
inline constexpr uint32_t kModeFull = 2;
extern std::atomic<uint32_t> g_mode;

/// Spans left before the next sampled-mode record on this thread. Starts at
/// 1 so the first span after entering sampled mode records immediately.
// constinit: guarantees constant initialization, so every access compiles
// to a direct TLS load instead of a guarded init-wrapper call.
extern constinit thread_local uint32_t t_sample_countdown;
/// Out-of-line countdown reload; always returns true ("record this span").
bool ReloadSampleCountdown();

/// The per-span record decision — the hot-path gate. Off: one relaxed load
/// and a branch. Full: the same plus one compare. Sampled: one extra
/// thread-local decrement per span, with the reload out of line.
inline bool ShouldRecord() {
  const uint32_t mode = g_mode.load(std::memory_order_relaxed);
  // Sampled first: it is the serving steady state, and testing it directly
  // leaves both the off and full paths a single branchless compare.
  if (mode == kModeSampled) {
    if (--t_sample_countdown != 0) return false;
    return ReloadSampleCountdown();
  }
  return mode == kModeFull;
}

struct ThreadBuffer;
/// The calling thread's ring buffer, created (and registered) on first use.
ThreadBuffer* LocalBuffer();
void EmitSpan(ThreadBuffer* buffer, const char* name, uint64_t start_ns,
              uint64_t end_ns);
void EmitCounter(ThreadBuffer* buffer, const char* name, uint64_t value);
/// Appends `text` to `out` with Chrome-trace JSON string escaping (quotes,
/// backslashes, control characters). Exposed for the unit tests.
void AppendJsonEscaped(const char* text, std::string* out);

/// Current depth of open spans on this thread (for nesting tests).
int SpanDepth();
}  // namespace internal

/// Whether *full* tracing is on (every span records). The sampled flight
/// recorder intentionally reads as false here: callers gating expensive
/// exhaustive collection (--trace exports, exit summaries) want the full
/// mode only, and the disabled-span bench asserts the serving default.
inline bool Enabled() {
  return internal::g_mode.load(std::memory_order_relaxed) ==
         internal::kModeFull;
}

/// Turns full recording on or off. Enabling (re)starts the trace epoch that
/// exported timestamps are relative to. Disabling falls back to the sampled
/// flight-recorder mode when one is active, else to off. Thread-safe.
void SetEnabled(bool enabled);

/// Flight-recorder configuration: sample every Nth span per thread, keep
/// roughly the last window of events for CollectRecent().
struct RecorderOptions {
  /// Per-thread sampling period; 1 records every span. Clamped to >= 1.
  uint32_t sample_period = 256;
  /// CollectRecent() returns events newer than now - window_ns.
  uint64_t window_ns = 10'000'000'000ull;  // ~10 s
};

/// Enters the always-on sampled mode (no-op downgrade when full tracing is
/// already on: the recorder stays armed underneath and SetEnabled(false)
/// lands on it). Thread-safe.
void EnableFlightRecorder(const RecorderOptions& options = {});
/// Disarms the recorder; sampled mode drops to off (full stays full).
void DisableFlightRecorder();
bool RecorderActive();

/// Clears all recorded events and drop counts, releases buffers of threads
/// that have exited, and restarts the epoch. Not safe to call concurrently
/// with emission from other threads (callers quiesce first).
void Reset();

/// Ring capacity (events per thread) for buffers created after this call;
/// rounded up to a power of two, default 16384. Tests use tiny rings to
/// exercise wraparound. Call before the threads under test emit.
void SetRingCapacity(size_t events);

/// Small dense id of the calling thread, assigned on first use, shared with
/// the logging prefix so log lines correlate with trace tracks.
uint32_t CurrentThreadId();

/// Names the calling thread's track in exports ("pool-worker-3"). Cheap;
/// safe to call whether or not tracing is enabled.
void SetThreadName(const std::string& name);

/// Monotonic nanosecond clock used for all trace timestamps.
uint64_t NowNanos();

// ---------------------------------------------------------------------------
// Request contexts.

/// Allocates a token for a server-generated request id. The id string is
/// the token itself ("s<token>"), so no registration or lookup state is
/// needed — the common no-client-rid path stays allocation-free.
uint64_t NextServerRequestToken();

/// Interns a client-supplied request id and returns its token (0 for an
/// empty id). The backing ring holds the most recent ~4096 ids; an evicted
/// token still resolves to a stable placeholder ("c<seq>").
uint64_t RegisterRequestId(std::string_view rid);

/// The id string a token stands for ("" for token 0).
std::string RequestIdForToken(uint64_t token);

/// The calling thread's current request-context token (0 = none).
uint64_t CurrentRequestContext();

/// Installs `token` as the thread's context and returns the previous one.
uint64_t SwapRequestContext(uint64_t token);

/// RAII request context: spans emitted in scope carry `token` and export
/// with the resolved rid. Nests; the previous context is restored on exit.
class ScopedRequestContext {
 public:
  explicit ScopedRequestContext(uint64_t token)
      : saved_(SwapRequestContext(token)) {}
  ~ScopedRequestContext() { SwapRequestContext(saved_); }

  ScopedRequestContext(const ScopedRequestContext&) = delete;
  ScopedRequestContext& operator=(const ScopedRequestContext&) = delete;

 private:
  uint64_t saved_;
};

/// RAII scoped span. Records [construction, destruction) on the calling
/// thread under `name` (a string literal). When recording is off (or this
/// span loses the sampling draw) the object is inert, including at
/// destruction.
class Span {
 public:
  explicit Span(const char* name)
      : name_(internal::ShouldRecord() ? name : nullptr),
        start_(Begin(name_)) {}
  ~Span() {
    if (name_ != nullptr) End(name_, start_);
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  static uint64_t Begin(const char* name);
  static void End(const char* name, uint64_t start_ns);

  const char* name_;
  uint64_t start_;
};

/// Records a named counter sample at the current time. No-op when recording
/// is off; counters are low-rate and bypass the span sampling draw.
void Counter(const char* name, uint64_t value);

/// One drained event. Spans carry [start_ns, start_ns + duration_ns) and
/// their nesting depth at emission; counters carry a value sampled at
/// start_ns with duration 0.
struct TraceEvent {
  enum class Kind { kSpan, kCounter };
  const char* name = nullptr;
  Kind kind = Kind::kSpan;
  uint64_t start_ns = 0;     // relative to the trace epoch
  uint64_t duration_ns = 0;  // spans only
  uint64_t value = 0;        // counters only
  uint64_t ctx = 0;          // request-context token (0 = none)
  uint32_t tid = 0;
  uint32_t depth = 0;  // spans only: open ancestors when the span closed
};

/// One thread's drained track.
struct ThreadTrack {
  uint32_t tid = 0;
  std::string name;          // "" when never named
  uint64_t dropped = 0;      // events lost to ring wraparound
  std::vector<TraceEvent> events;  // ascending start_ns
};

/// Everything recorded so far, drained without stopping emission.
struct TraceSnapshot {
  std::vector<ThreadTrack> threads;  // ascending tid
  uint64_t total_events = 0;
  uint64_t total_dropped = 0;
};

/// Drains every thread's ring into a snapshot. Safe to call while other
/// threads keep emitting (in-flight events may be missed or half-written
/// slots skipped; nothing torn is returned).
TraceSnapshot Collect();

/// Collect() restricted to events ending within the recorder window
/// (RecorderOptions::window_ns before now) — the /debug/trace payload.
TraceSnapshot CollectRecent();

/// Renders the snapshot in the Chrome trace-event JSON format (complete "X"
/// events plus thread-name metadata), loadable in ui.perfetto.dev and
/// chrome://tracing. Spans with a request context export
/// "args":{"rid":"..."}.
std::string ToChromeTraceJson(const TraceSnapshot& snapshot);

/// Writes ToChromeTraceJson(snapshot) to `path`.
Status WriteChromeTrace(const TraceSnapshot& snapshot,
                        const std::string& path);

/// Installs a fatal-signal handler (SIGSEGV/SIGABRT/SIGBUS/SIGFPE/SIGILL)
/// that writes ToChromeTraceJson(CollectRecent()) to `path`, then re-raises
/// with the default disposition so the exit status is preserved. Best
/// effort by design: the dump path allocates and takes the registry lock,
/// which is not async-signal-safe — a crash inside the tracer itself may
/// lose the dump, but every other crash gets the flight-recorder window.
/// Idempotent; the last path wins.
Status InstallCrashHandler(const std::string& path);

/// Per-span-name aggregation (count, total, max) plus per-thread track
/// lines — the human-readable companion of the JSON export.
std::string RenderTextSummary(const TraceSnapshot& snapshot);

/// Registers an atexit hook that, at process exit, writes
/// RenderTextSummary(Collect()) to stderr if tracing is still enabled and
/// the summary was not already flushed. Idempotent; FlushExitSummary() runs
/// the same flush early (the serve daemon calls it on clean shutdown so a
/// SIGTERM'd process and a normal exit report identically).
void RegisterExitSummary();
void FlushExitSummary();

}  // namespace skydia::trace

#define SKYDIA_TRACE_CONCAT_INNER(a, b) a##b
#define SKYDIA_TRACE_CONCAT(a, b) SKYDIA_TRACE_CONCAT_INNER(a, b)
/// Scoped span covering the rest of the enclosing block.
#define SKYDIA_TRACE_SPAN(name) \
  ::skydia::trace::Span SKYDIA_TRACE_CONCAT(skydia_trace_span_, __LINE__)(name)

#endif  // SKYDIA_SRC_COMMON_TRACE_H_
