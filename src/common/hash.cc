#include "src/common/hash.h"

namespace skydia {

uint64_t Fnv1a64(const void* data, size_t len) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint64_t h = 0xcbf29ce484222325ull;
  for (size_t i = 0; i < len; ++i) {
    h ^= bytes[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

uint64_t Fnv1a64(std::string_view s) { return Fnv1a64(s.data(), s.size()); }

uint64_t HashCombine(uint64_t seed, uint64_t value) {
  // 64-bit variant of boost::hash_combine with a stronger finalizer constant.
  seed ^= value + 0x9E3779B97F4A7C15ull + (seed << 12) + (seed >> 4);
  return seed;
}

uint64_t HashIds(const std::vector<uint32_t>& ids) {
  return Fnv1a64(ids.data(), ids.size() * sizeof(uint32_t));
}

}  // namespace skydia
