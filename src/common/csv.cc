#include "src/common/csv.h"

#include <fstream>
#include <sstream>

namespace skydia {

StatusOr<CsvDocument> ParseCsv(std::string_view text) {
  CsvDocument doc;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;
  bool row_started = false;

  auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_row = [&] {
    end_field();
    doc.rows.push_back(std::move(row));
    row.clear();
    row_started = false;
  };

  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
      continue;
    }
    switch (c) {
      case '"':
        in_quotes = true;
        field_started = true;
        row_started = true;
        break;
      case ',':
        end_field();
        row_started = true;
        break;
      case '\r':
        break;  // tolerate CRLF
      case '\n':
        if (row_started || field_started || !row.empty()) {
          end_row();
        }
        break;
      default:
        field.push_back(c);
        field_started = true;
        row_started = true;
        break;
    }
  }
  if (in_quotes) {
    return Status::Corruption("unterminated quoted CSV field");
  }
  if (row_started || field_started || !row.empty()) {
    end_row();
  }
  return doc;
}

StatusOr<CsvDocument> ReadCsvFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("cannot open CSV file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseCsv(buffer.str());
}

namespace {

bool NeedsQuoting(const std::string& field) {
  return field.find_first_of(",\"\r\n") != std::string::npos;
}

void AppendField(std::string* out, const std::string& field) {
  if (!NeedsQuoting(field)) {
    *out += field;
    return;
  }
  out->push_back('"');
  for (char c : field) {
    if (c == '"') out->push_back('"');
    out->push_back(c);
  }
  out->push_back('"');
}

}  // namespace

std::string WriteCsv(const CsvDocument& doc) {
  std::string out;
  for (const auto& row : doc.rows) {
    // A row holding exactly one empty field would render as a blank line,
    // which the parser skips — the row would silently vanish on a
    // write/read round trip (found by fuzz_csv's round-trip invariant).
    // Quote it so the reader sees the field.
    if (row.size() == 1 && row[0].empty()) {
      out.append("\"\"\n");
      continue;
    }
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out.push_back(',');
      AppendField(&out, row[i]);
    }
    out.push_back('\n');
  }
  return out;
}

Status WriteCsvFile(const std::string& path, const CsvDocument& doc) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::Internal("cannot open CSV file for writing: " + path);
  }
  out << WriteCsv(doc);
  if (!out) {
    return Status::Internal("short write to CSV file: " + path);
  }
  return Status::OK();
}

}  // namespace skydia
