// Rectilinear polyomino outlines (the "skymino" regions of the diagram) and
// helpers for area/containment checks used by the sweeping algorithm and the
// structure-statistics harness.
#ifndef SKYDIA_SRC_GEOMETRY_POLYOMINO_H_
#define SKYDIA_SRC_GEOMETRY_POLYOMINO_H_

#include <cstdint>
#include <vector>

#include "src/geometry/point.h"

namespace skydia {

/// A closed rectilinear polygon given by its vertex cycle. Consecutive
/// vertices differ in exactly one coordinate; the last vertex connects back
/// to the first. Orientation is not prescribed.
struct PolyominoOutline {
  std::vector<Point2D> vertices;

  /// Signed double area via the shoelace formula (positive for
  /// counter-clockwise orientation).
  int64_t SignedDoubleArea() const;

  /// |SignedDoubleArea()| / 2 — exact because rectilinear polygons on integer
  /// coordinates always have even double area.
  int64_t Area() const;

  /// Perimeter length.
  int64_t Perimeter() const;

  /// Point-in-polygon test (even-odd rule) for points strictly inside; points
  /// on the boundary return an unspecified side, so callers should test
  /// interior samples only.
  bool ContainsInterior(const Point2D& p) const;

  /// True when all edges are axis-parallel and the cycle closes.
  bool IsRectilinear() const;
};

}  // namespace skydia

#endif  // SKYDIA_SRC_GEOMETRY_POLYOMINO_H_
