// Dataset: an immutable collection of 2-D points (the diagram "seeds") plus
// the attribute domain they live on, and DatasetNd, its d-dimensional
// counterpart used by the high-dimensional diagram extensions.
#ifndef SKYDIA_SRC_GEOMETRY_DATASET_H_
#define SKYDIA_SRC_GEOMETRY_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/geometry/point.h"

namespace skydia {

/// Validation options for Dataset::Create.
struct DatasetOptions {
  /// Reject datasets where two points share an x or a y coordinate value.
  /// The paper's general-position setting: required by the sweeping
  /// vertex-walk construction, and used by incremental maintenance to keep
  /// the property alive across inserts.
  bool require_distinct_coordinates = false;
};

/// An immutable 2-D dataset. Coordinates are validated to lie in
/// [0, domain_size) at construction. Duplicate points and shared coordinate
/// values are allowed (the diagram algorithms are tie-aware; see DESIGN.md),
/// except where an algorithm documents a distinct-coordinates requirement.
class Dataset {
 public:
  /// Validates coordinates against `domain_size` and builds the dataset.
  /// Optional `labels` (one per point) are carried for display; pass {} for
  /// none. Returns InvalidArgument on out-of-domain coordinates, a label
  /// count mismatch, or a violated DatasetOptions constraint.
  static StatusOr<Dataset> Create(std::vector<Point2D> points,
                                  int64_t domain_size,
                                  std::vector<std::string> labels = {},
                                  const DatasetOptions& options = {});

  size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }
  int64_t domain_size() const { return domain_size_; }

  const Point2D& point(PointId id) const { return points_[id]; }
  const std::vector<Point2D>& points() const { return points_; }

  /// Returns the label for `id`, or "p<id>" when no labels were supplied.
  std::string label(PointId id) const;
  bool has_labels() const { return !labels_.empty(); }

  /// True when no two points share an x coordinate and no two share a y
  /// coordinate (the paper's general-position figures). Required by the
  /// sweeping algorithm's vertex-walk construction.
  bool HasDistinctCoordinates() const;

 private:
  Dataset(std::vector<Point2D> points, int64_t domain_size,
          std::vector<std::string> labels)
      : points_(std::move(points)),
        labels_(std::move(labels)),
        domain_size_(domain_size) {}

  std::vector<Point2D> points_;
  std::vector<std::string> labels_;
  int64_t domain_size_;
};

/// An immutable d-dimensional dataset with row-major flat coordinate storage.
class DatasetNd {
 public:
  /// `coords` holds n*dims values, point i at [i*dims, (i+1)*dims).
  static StatusOr<DatasetNd> Create(std::vector<int64_t> coords, int dims,
                                    int64_t domain_size);

  /// Lifts a 2-D dataset into the n-dimensional representation.
  static DatasetNd FromDataset2d(const Dataset& dataset);

  size_t size() const { return dims_ == 0 ? 0 : coords_.size() / dims_; }
  int dims() const { return dims_; }
  int64_t domain_size() const { return domain_size_; }

  int64_t coord(PointId id, int dim) const { return coords_[id * dims_ + dim]; }
  const int64_t* row(PointId id) const { return coords_.data() + id * dims_; }

 private:
  DatasetNd(std::vector<int64_t> coords, int dims, int64_t domain_size)
      : coords_(std::move(coords)), dims_(dims), domain_size_(domain_size) {}

  std::vector<int64_t> coords_;
  int dims_;
  int64_t domain_size_;
};

}  // namespace skydia

#endif  // SKYDIA_SRC_GEOMETRY_DATASET_H_
