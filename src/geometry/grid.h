// CellGrid: the coordinate-compressed grid of *skyline cells* (Definition 6).
//
// A horizontal and a vertical grid line through every point divide the plane
// into O(n^2) cells; all query points in one cell share the same
// quadrant/global skyline. With ties (shared coordinate values) several
// points contribute the same line, which is what bounds the cell count by the
// domain size; the grid therefore works in *rank space*:
//
//   xrank(p) = index of p.x among the sorted distinct x values (0-based)
//
// Cell columns are indexed 0..NumDistinctX() inclusive. Column `cx` contains
// the query x-range (xs[cx-1], xs[cx]]  (half-open; column 0 extends to -inf,
// column NumDistinctX() to +inf). Under the library's candidate semantics for
// the first quadrant (p is a candidate for query q iff p.x >= q.x and
// p.y >= q.y), the candidate set of every query in column cx is exactly
// {p : xrank(p) >= cx}, so the half-open convention is *exact* for all query
// positions, including queries lying on grid lines.
#ifndef SKYDIA_SRC_GEOMETRY_GRID_H_
#define SKYDIA_SRC_GEOMETRY_GRID_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/geometry/dataset.h"
#include "src/geometry/point.h"

namespace skydia {

/// Coordinate compression plus cell arithmetic for one 2-D dataset.
class CellGrid {
 public:
  explicit CellGrid(const Dataset& dataset);

  /// Number of distinct x (resp. y) coordinate values among the points.
  uint32_t num_distinct_x() const { return static_cast<uint32_t>(xs_.size()); }
  uint32_t num_distinct_y() const { return static_cast<uint32_t>(ys_.size()); }

  /// Grid dimensions in cells: columns = num_distinct_x()+1, etc.
  uint32_t num_columns() const { return num_distinct_x() + 1; }
  uint32_t num_rows() const { return num_distinct_y() + 1; }
  uint64_t num_cells() const {
    return static_cast<uint64_t>(num_columns()) * num_rows();
  }

  /// The i-th distinct x (resp. y) value, ascending. i < num_distinct_x().
  int64_t x_value(uint32_t i) const { return xs_[i]; }
  int64_t y_value(uint32_t i) const { return ys_[i]; }

  /// Rank of point `id` (index of its coordinate among the distinct values).
  uint32_t xrank(PointId id) const { return xrank_[id]; }
  uint32_t yrank(PointId id) const { return yrank_[id]; }

  /// Cell column containing query coordinate `qx`: the number of distinct x
  /// values strictly less than `qx`.
  uint32_t ColumnOf(int64_t qx) const;
  uint32_t RowOf(int64_t qy) const;

  /// True when `qx` coincides with a vertical grid line (a point's x value).
  bool IsOnVerticalLine(int64_t qx) const;
  bool IsOnHorizontalLine(int64_t qy) const;

  /// Flattened row-major cell index.
  uint64_t CellIndex(uint32_t cx, uint32_t cy) const {
    return static_cast<uint64_t>(cy) * num_columns() + cx;
  }

  /// Point ids whose xrank == cx (the contributors of the vertical grid line
  /// crossed when moving from column cx to cx+1). Empty for cx ==
  /// num_distinct_x().
  const std::vector<PointId>& PointsAtColumn(uint32_t cx) const;
  const std::vector<PointId>& PointsAtRow(uint32_t cy) const;

  /// Point ids with rank exactly (cx, cy) — the points sitting on the "upper
  /// right corner" of cell (cx, cy) in the paper's terminology. Empty for
  /// most cells.
  const std::vector<PointId>& PointsAtCorner(uint32_t cx, uint32_t cy) const;

 private:
  std::vector<int64_t> xs_;  // sorted distinct x values
  std::vector<int64_t> ys_;
  std::vector<uint32_t> xrank_;  // per point
  std::vector<uint32_t> yrank_;
  std::vector<std::vector<PointId>> column_points_;  // indexed by xrank
  std::vector<std::vector<PointId>> row_points_;     // indexed by yrank
  std::unordered_map<uint64_t, std::vector<PointId>> corner_points_;
  std::vector<PointId> empty_;
};

}  // namespace skydia

#endif  // SKYDIA_SRC_GEOMETRY_GRID_H_
