#include "src/geometry/polyomino.h"

#include <cstdlib>

namespace skydia {

int64_t PolyominoOutline::SignedDoubleArea() const {
  const size_t n = vertices.size();
  if (n < 3) return 0;
  int64_t twice = 0;
  for (size_t i = 0; i < n; ++i) {
    const Point2D& a = vertices[i];
    const Point2D& b = vertices[(i + 1) % n];
    twice += a.x * b.y - b.x * a.y;
  }
  return twice;
}

int64_t PolyominoOutline::Area() const {
  return std::llabs(SignedDoubleArea()) / 2;
}

int64_t PolyominoOutline::Perimeter() const {
  const size_t n = vertices.size();
  if (n < 2) return 0;
  int64_t total = 0;
  for (size_t i = 0; i < n; ++i) {
    const Point2D& a = vertices[i];
    const Point2D& b = vertices[(i + 1) % n];
    total += std::llabs(a.x - b.x) + std::llabs(a.y - b.y);
  }
  return total;
}

bool PolyominoOutline::ContainsInterior(const Point2D& p) const {
  // Even-odd ray casting against vertical edges only (sufficient for
  // rectilinear polygons): count edges crossing the horizontal ray to +x.
  const size_t n = vertices.size();
  bool inside = false;
  for (size_t i = 0; i < n; ++i) {
    const Point2D& a = vertices[i];
    const Point2D& b = vertices[(i + 1) % n];
    if (a.x != b.x) continue;  // horizontal edge, cannot cross the ray
    const int64_t lo = std::min(a.y, b.y);
    const int64_t hi = std::max(a.y, b.y);
    if (p.y >= lo && p.y < hi && a.x > p.x) inside = !inside;
  }
  return inside;
}

bool PolyominoOutline::IsRectilinear() const {
  const size_t n = vertices.size();
  if (n < 4) return false;
  for (size_t i = 0; i < n; ++i) {
    const Point2D& a = vertices[i];
    const Point2D& b = vertices[(i + 1) % n];
    const bool horizontal = a.y == b.y && a.x != b.x;
    const bool vertical = a.x == b.x && a.y != b.y;
    if (!horizontal && !vertical) return false;
  }
  return true;
}

}  // namespace skydia
