#include "src/geometry/point.h"

#include <sstream>

namespace skydia {

std::ostream& operator<<(std::ostream& os, const Point2D& p) {
  return os << "(" << p.x << ", " << p.y << ")";
}

std::string ToString(const Point2D& p) {
  std::ostringstream os;
  os << p;
  return os.str();
}

}  // namespace skydia
