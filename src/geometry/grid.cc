#include "src/geometry/grid.h"

#include <algorithm>

namespace skydia {

namespace {

std::vector<int64_t> SortedDistinct(const std::vector<Point2D>& points,
                                    bool use_x) {
  std::vector<int64_t> values;
  values.reserve(points.size());
  for (const Point2D& p : points) values.push_back(use_x ? p.x : p.y);
  std::sort(values.begin(), values.end());
  values.erase(std::unique(values.begin(), values.end()), values.end());
  return values;
}

uint32_t RankOf(const std::vector<int64_t>& values, int64_t v) {
  return static_cast<uint32_t>(
      std::lower_bound(values.begin(), values.end(), v) - values.begin());
}

}  // namespace

CellGrid::CellGrid(const Dataset& dataset)
    : xs_(SortedDistinct(dataset.points(), /*use_x=*/true)),
      ys_(SortedDistinct(dataset.points(), /*use_x=*/false)) {
  const size_t n = dataset.size();
  xrank_.resize(n);
  yrank_.resize(n);
  column_points_.resize(num_columns());
  row_points_.resize(num_rows());
  for (PointId id = 0; id < n; ++id) {
    const Point2D& p = dataset.point(id);
    xrank_[id] = RankOf(xs_, p.x);
    yrank_[id] = RankOf(ys_, p.y);
    column_points_[xrank_[id]].push_back(id);
    row_points_[yrank_[id]].push_back(id);
    corner_points_[CellIndex(xrank_[id], yrank_[id])].push_back(id);
  }
}

uint32_t CellGrid::ColumnOf(int64_t qx) const { return RankOf(xs_, qx); }

uint32_t CellGrid::RowOf(int64_t qy) const { return RankOf(ys_, qy); }

bool CellGrid::IsOnVerticalLine(int64_t qx) const {
  return std::binary_search(xs_.begin(), xs_.end(), qx);
}

bool CellGrid::IsOnHorizontalLine(int64_t qy) const {
  return std::binary_search(ys_.begin(), ys_.end(), qy);
}

const std::vector<PointId>& CellGrid::PointsAtColumn(uint32_t cx) const {
  if (cx >= column_points_.size()) return empty_;
  return column_points_[cx];
}

const std::vector<PointId>& CellGrid::PointsAtRow(uint32_t cy) const {
  if (cy >= row_points_.size()) return empty_;
  return row_points_[cy];
}

const std::vector<PointId>& CellGrid::PointsAtCorner(uint32_t cx,
                                                     uint32_t cy) const {
  auto it = corner_points_.find(CellIndex(cx, cy));
  if (it == corner_points_.end()) return empty_;
  return it->second;
}

}  // namespace skydia
