// Basic geometric vocabulary: 2-D points with integer coordinates and ids.
//
// All skydia coordinates are integers on a limited domain (see DESIGN.md,
// "Coordinate model"). The dynamic-skyline machinery works in doubled (and
// for subcell representatives, quadrupled) coordinates so that bisector lines
// and interval midpoints stay exact.
#ifndef SKYDIA_SRC_GEOMETRY_POINT_H_
#define SKYDIA_SRC_GEOMETRY_POINT_H_

#include <cstdint>
#include <ostream>
#include <string>

namespace skydia {

/// Index of a point within its Dataset. Stable across all diagram structures.
using PointId = uint32_t;

/// Sentinel for "no point".
inline constexpr PointId kInvalidPointId = static_cast<PointId>(-1);

/// A point in the plane with integer coordinates.
struct Point2D {
  int64_t x = 0;
  int64_t y = 0;

  friend bool operator==(const Point2D& a, const Point2D& b) = default;
};

/// Lexicographic (x, then y) comparison; the canonical sort order used by the
/// sort-scan skyline algorithms.
inline bool LexLess(const Point2D& a, const Point2D& b) {
  if (a.x != b.x) return a.x < b.x;
  return a.y < b.y;
}

std::ostream& operator<<(std::ostream& os, const Point2D& p);
std::string ToString(const Point2D& p);

}  // namespace skydia

#endif  // SKYDIA_SRC_GEOMETRY_POINT_H_
