#include "src/geometry/dataset.h"

#include <algorithm>
#include <unordered_set>

namespace skydia {

StatusOr<Dataset> Dataset::Create(std::vector<Point2D> points,
                                  int64_t domain_size,
                                  std::vector<std::string> labels,
                                  const DatasetOptions& options) {
  if (domain_size <= 0) {
    return Status::InvalidArgument("domain_size must be positive");
  }
  if (!labels.empty() && labels.size() != points.size()) {
    return Status::InvalidArgument("label count does not match point count");
  }
  for (const Point2D& p : points) {
    if (p.x < 0 || p.x >= domain_size || p.y < 0 || p.y >= domain_size) {
      return Status::InvalidArgument("point " + ToString(p) +
                                     " outside domain [0, " +
                                     std::to_string(domain_size) + ")");
    }
  }
  if (options.require_distinct_coordinates) {
    std::unordered_set<int64_t> xs;
    std::unordered_set<int64_t> ys;
    xs.reserve(points.size());
    ys.reserve(points.size());
    for (const Point2D& p : points) {
      // AlreadyExists (not InvalidArgument) so consumers — the serve
      // layer's duplicate_coordinate error code — can branch on the code
      // instead of matching message text.
      if (!xs.insert(p.x).second) {
        return Status::AlreadyExists(
            "duplicate x coordinate " + std::to_string(p.x) +
            " violates the distinct-coordinates requirement");
      }
      if (!ys.insert(p.y).second) {
        return Status::AlreadyExists(
            "duplicate y coordinate " + std::to_string(p.y) +
            " violates the distinct-coordinates requirement");
      }
    }
  }
  return Dataset(std::move(points), domain_size, std::move(labels));
}

std::string Dataset::label(PointId id) const {
  if (id < labels_.size()) return labels_[id];
  // Built via insert rather than `"p" + ...`: the operator+ form trips GCC
  // 12's -Wrestrict false positive (PR 105651) at -O2 under -Werror.
  std::string label = std::to_string(id);
  label.insert(0, 1, 'p');
  return label;
}

bool Dataset::HasDistinctCoordinates() const {
  std::unordered_set<int64_t> xs;
  std::unordered_set<int64_t> ys;
  xs.reserve(points_.size());
  ys.reserve(points_.size());
  for (const Point2D& p : points_) {
    if (!xs.insert(p.x).second) return false;
    if (!ys.insert(p.y).second) return false;
  }
  return true;
}

StatusOr<DatasetNd> DatasetNd::Create(std::vector<int64_t> coords, int dims,
                                      int64_t domain_size) {
  if (dims <= 0) {
    return Status::InvalidArgument("dims must be positive");
  }
  if (domain_size <= 0) {
    return Status::InvalidArgument("domain_size must be positive");
  }
  if (coords.size() % static_cast<size_t>(dims) != 0) {
    return Status::InvalidArgument("coords size is not a multiple of dims");
  }
  for (int64_t c : coords) {
    if (c < 0 || c >= domain_size) {
      return Status::InvalidArgument("coordinate outside domain");
    }
  }
  return DatasetNd(std::move(coords), dims, domain_size);
}

DatasetNd DatasetNd::FromDataset2d(const Dataset& dataset) {
  std::vector<int64_t> coords;
  coords.reserve(dataset.size() * 2);
  for (const Point2D& p : dataset.points()) {
    coords.push_back(p.x);
    coords.push_back(p.y);
  }
  return DatasetNd(std::move(coords), 2, dataset.domain_size());
}

}  // namespace skydia
