// Server observability: lightweight relaxed-atomic counters plus a
// Prometheus text-format renderer for the /metrics endpoint.
//
// QueryEngine already tracks query counts and a sampled latency histogram
// (src/core/query_engine.h); ServerMetrics adds the transport-level view
// (connections, bytes, protocol errors, reloads). RenderPrometheusMetrics
// joins both with the snapshot's cache counters into one scrape payload.
#ifndef SKYDIA_SRC_SERVE_METRICS_H_
#define SKYDIA_SRC_SERVE_METRICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <string>

#include "src/serve/snapshot_registry.h"

namespace skydia::serve {

/// Transport-level serving counters. All relaxed atomics: exact totals, no
/// inter-thread ordering implied.
///
/// Connection-gauge semantics under the reactor: a connection is a state
/// machine owned by the event loop, not a thread. `connections_open` counts
/// state machines registered with epoll; it is incremented on accept and
/// decremented exactly once when the event loop destroys the state machine
/// (read error, EOF drain, idle/oversize/backpressure close, or shutdown) —
/// there is no thread-exit/reaper race for it to double count.
struct ServerMetrics {
  /// Log2 buckets for the reactor-loop-latency histogram: bucket b counts
  /// loop iterations whose epoll_wait-to-idle time fell in [2^b, 2^(b+1)) ns.
  static constexpr size_t kReactorLoopBuckets = 32;
  /// Log2 buckets shared by the request-duration and mutation-publish
  /// histograms (same [2^b, 2^(b+1)) ns scheme, rendered in seconds).
  static constexpr size_t kDurationBuckets = 32;

  // Ordering: every counter in this struct is updated and read with
  // memory_order_relaxed — exact totals, no inter-thread ordering implied.
  std::atomic<uint64_t> connections_opened{0};
  std::atomic<uint64_t> connections_open{0};
  std::atomic<uint64_t> connections_rejected{0};  ///< over max_connections
  std::atomic<uint64_t> requests_total{0};
  std::atomic<uint64_t> error_replies{0};
  std::atomic<uint64_t> malformed_requests{0};
  std::atomic<uint64_t> oversize_disconnects{0};
  std::atomic<uint64_t> idle_disconnects{0};
  /// Connections dropped because the peer stopped draining replies and the
  /// output buffer hit ServerOptions::max_response_bytes (relaxed).
  std::atomic<uint64_t> backpressure_disconnects{0};
  /// Connections whose peer half-closed (FIN) with replies still pending;
  /// the reactor flushed the tail before closing (relaxed).
  std::atomic<uint64_t> half_closed_drains{0};
  std::atomic<uint64_t> bytes_received{0};
  std::atomic<uint64_t> bytes_sent{0};
  std::atomic<uint64_t> reloads{0};
  std::atomic<uint64_t> reload_failures{0};
  // Mutation pipeline (the serve write path; see mutation_pipeline.h).
  std::atomic<uint64_t> mutation_inserts{0};   ///< inserts applied
  std::atomic<uint64_t> mutation_deletes{0};   ///< deletes applied
  std::atomic<uint64_t> mutation_failures{0};  ///< mutation requests rejected
  std::atomic<uint64_t> mutation_publishes{0};  ///< shadow->snapshot installs
  /// Cells/subcells recomputed across all published mutations — the
  /// incremental win (a full rebuild recomputes every cell per mutation).
  std::atomic<uint64_t> mutation_cells_recomputed{0};
  std::atomic<uint64_t> mutation_pending{0};  ///< gauge: applied, unpublished
  std::atomic<uint64_t> mutation_points_live{0};  ///< gauge at last publish
  /// Gauge: wall time of the last publish (relaxed).
  std::atomic<uint64_t> mutation_last_publish_ns{0};
  /// Gauge: mutations coalesced into the last publish (relaxed).
  std::atomic<uint64_t> mutation_last_publish_mutations{0};
  /// Gauge: cells recomputed by the last publish (relaxed).
  std::atomic<uint64_t> mutation_last_publish_cells{0};
  /// Batches executed by the worker pool (line batches + HTTP requests;
  /// relaxed).
  std::atomic<uint64_t> worker_batches{0};
  /// Small pure-query batches executed inline on the event-loop thread
  /// (the reactor fast path; see ServerOptions::inline_batch_lines; relaxed).
  std::atomic<uint64_t> inline_batches{0};
  /// Batches currently queued for or running on the worker pool (relaxed
  /// gauge; guarded against underflow by GuardedDecrement).
  std::atomic<uint64_t> worker_queue_depth{0};
  /// Sampled reactor loop-iteration latency (every iteration that handled
  /// at least one event records one sample; relaxed histogram buckets).
  std::array<std::atomic<uint64_t>, kReactorLoopBuckets> reactor_loop_ns{};
  /// Gauge: nanoseconds between the two most recent reactor wakeups — the
  /// loop lag an enqueued completion currently waits (relaxed; written by
  /// the event loop only).
  std::atomic<uint64_t> reactor_loop_lag_ns{0};

  /// End-to-end batch duration (parse -> answer -> render) as seen by
  /// ServeBatch, one sample per batch (relaxed histogram buckets + sum ns +
  /// count; exact totals, no ordering implied).
  std::array<std::atomic<uint64_t>, kDurationBuckets> request_duration_ns{};
  std::atomic<uint64_t> request_duration_sum_ns{0};
  std::atomic<uint64_t> request_duration_count{0};
  /// Exemplars: the most recent request-context token and duration to land
  /// in each bucket, linking tail-latency buckets to concrete request ids
  /// (GET /debug/snapshot). Relaxed independent stores: the token/duration
  /// pair may tear across a concurrent write — acceptable for a debug aid,
  /// never for accounting.
  std::array<std::atomic<uint64_t>, kDurationBuckets> request_exemplar_token{};
  std::array<std::atomic<uint64_t>, kDurationBuckets> request_exemplar_ns{};

  /// Mutation-publish duration (grab -> wrap -> install), one sample per
  /// publish (relaxed histogram buckets + sum ns + count).
  std::array<std::atomic<uint64_t>, kDurationBuckets> mutation_publish_ns{};
  std::atomic<uint64_t> mutation_publish_sum_ns{0};
  std::atomic<uint64_t> mutation_publish_count{0};

  /// Records one reactor loop iteration of `ns` nanoseconds.
  void RecordReactorLoop(uint64_t ns) {
    const auto b = static_cast<size_t>(std::bit_width(ns | 1) - 1);
    reactor_loop_ns[b < kReactorLoopBuckets ? b : kReactorLoopBuckets - 1]
        .fetch_add(1, std::memory_order_relaxed);
  }

  /// Records one served batch of `ns` nanoseconds under request-context
  /// token `ctx` (0 = none; the bucket exemplar is skipped).
  void RecordRequestDuration(uint64_t ns, uint64_t ctx) {
    auto b = static_cast<size_t>(std::bit_width(ns | 1) - 1);
    if (b >= kDurationBuckets) b = kDurationBuckets - 1;
    request_duration_ns[b].fetch_add(1, std::memory_order_relaxed);
    request_duration_sum_ns.fetch_add(ns, std::memory_order_relaxed);
    request_duration_count.fetch_add(1, std::memory_order_relaxed);
    if (ctx != 0) {
      request_exemplar_token[b].store(ctx, std::memory_order_relaxed);
      request_exemplar_ns[b].store(ns, std::memory_order_relaxed);
    }
  }

  /// Records one mutation publish of `ns` nanoseconds.
  void RecordMutationPublish(uint64_t ns) {
    auto b = static_cast<size_t>(std::bit_width(ns | 1) - 1);
    if (b >= kDurationBuckets) b = kDurationBuckets - 1;
    mutation_publish_ns[b].fetch_add(1, std::memory_order_relaxed);
    mutation_publish_sum_ns.fetch_add(ns, std::memory_order_relaxed);
    mutation_publish_count.fetch_add(1, std::memory_order_relaxed);
  }
};

/// Decrements `gauge` unless it is already zero (CAS loop), so a double
/// close can never wrap the open-connections gauge to 2^64-1. Returns false
/// when the decrement was skipped.
bool GuardedDecrement(std::atomic<uint64_t>* gauge);

/// Renders the Prometheus text exposition for one scrape: server counters,
/// the snapshot's engine stats (qps, the sampled latency histogram with
/// p50/p99 gauges) and cache hit ratio, the current generation, and the
/// `skydia_build_info` labeled gauge. `snapshot` may be null (before the
/// first install). `uptime_seconds` feeds the qps gauge.
std::string RenderPrometheusMetrics(const ServerMetrics& metrics,
                                    const ServingSnapshot* snapshot,
                                    double uptime_seconds);

}  // namespace skydia::serve

#endif  // SKYDIA_SRC_SERVE_METRICS_H_
