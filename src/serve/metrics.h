// Server observability: lightweight relaxed-atomic counters plus a
// Prometheus text-format renderer for the /metrics endpoint.
//
// QueryEngine already tracks query counts and a sampled latency histogram
// (src/core/query_engine.h); ServerMetrics adds the transport-level view
// (connections, bytes, protocol errors, reloads). RenderPrometheusMetrics
// joins both with the snapshot's cache counters into one scrape payload.
#ifndef SKYDIA_SRC_SERVE_METRICS_H_
#define SKYDIA_SRC_SERVE_METRICS_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "src/serve/snapshot_registry.h"

namespace skydia::serve {

/// Transport-level serving counters. All relaxed atomics: exact totals, no
/// inter-thread ordering implied.
struct ServerMetrics {
  std::atomic<uint64_t> connections_opened{0};
  std::atomic<uint64_t> connections_open{0};
  std::atomic<uint64_t> connections_rejected{0};  ///< over max_connections
  std::atomic<uint64_t> requests_total{0};
  std::atomic<uint64_t> error_replies{0};
  std::atomic<uint64_t> malformed_requests{0};
  std::atomic<uint64_t> oversize_disconnects{0};
  std::atomic<uint64_t> idle_disconnects{0};
  std::atomic<uint64_t> bytes_received{0};
  std::atomic<uint64_t> bytes_sent{0};
  std::atomic<uint64_t> reloads{0};
  std::atomic<uint64_t> reload_failures{0};
};

/// Decrements `gauge` unless it is already zero (CAS loop), so a double
/// close can never wrap the open-connections gauge to 2^64-1. Returns false
/// when the decrement was skipped.
bool GuardedDecrement(std::atomic<uint64_t>* gauge);

/// Renders the Prometheus text exposition for one scrape: server counters,
/// the snapshot's engine stats (qps, the sampled latency histogram with
/// p50/p99 gauges) and cache hit ratio, the current generation, and the
/// `skydia_build_info` labeled gauge. `snapshot` may be null (before the
/// first install). `uptime_seconds` feeds the qps gauge.
std::string RenderPrometheusMetrics(const ServerMetrics& metrics,
                                    const ServingSnapshot* snapshot,
                                    double uptime_seconds);

}  // namespace skydia::serve

#endif  // SKYDIA_SRC_SERVE_METRICS_H_
