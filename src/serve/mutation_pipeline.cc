#include "src/serve/mutation_pipeline.h"

#include <algorithm>
#include <utility>

#include "src/common/trace.h"
#include "src/core/diagram.h"

namespace skydia::serve {

MutationPipeline::MutationPipeline(SnapshotRegistry* registry,
                                   ServerMetrics* metrics,
                                   const MutationPipelineOptions& options)
    : registry_(registry), metrics_(metrics), options_(options) {
  if (options_.window_ms > 0) {
    publisher_ = std::thread([this] { PublisherLoop(); });
  }
}

MutationPipeline::~MutationPipeline() { Stop(); }

void MutationPipeline::Stop() {
  {
    MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (publisher_.joinable()) publisher_.join();
}

Status MutationPipeline::EnsureShadowLocked() {
  if (quadrant_ != nullptr || dynamic_ != nullptr) return Status::OK();
  const auto snapshot = registry_->Current();
  if (snapshot == nullptr) {
    return Status::FailedPrecondition("no snapshot installed");
  }
  IncrementalOptions options;
  options.require_distinct_coordinates = options_.require_distinct;
  if (snapshot->diagram->subcell_diagram() != nullptr) {
    auto shadow = IncrementalDynamicDiagram::Create(
        snapshot->diagram->dataset(), options);
    if (!shadow.ok()) return shadow.status();
    dynamic_ =
        std::make_unique<IncrementalDynamicDiagram>(std::move(*shadow));
  } else {
    if (snapshot->diagram->type() == SkylineQueryType::kGlobal) {
      return Status::InvalidArgument(
          "mutations are not supported for global semantics");
    }
    auto shadow = IncrementalQuadrantDiagram::Create(
        snapshot->diagram->dataset(), options);
    if (!shadow.ok()) return shadow.status();
    quadrant_ =
        std::make_unique<IncrementalQuadrantDiagram>(std::move(*shadow));
  }
  source_path_ = snapshot->source_path;
  seeded_at_ = std::chrono::steady_clock::now();
  return Status::OK();
}

StatusOr<MutationAck> MutationPipeline::Insert(
    const Point2D& p, std::optional<std::string> label) {
  SKYDIA_TRACE_SPAN("mutation.apply");
  MutationAck ack;
  bool publish_now = false;
  bool first_pending = false;
  {
    MutexLock lock(mu_);
    if (Status seeded = EnsureShadowLocked(); !seeded.ok()) {
      metrics_->mutation_failures.fetch_add(1, std::memory_order_relaxed);
      return seeded;
    }
    if (options_.max_pending > 0 && pending_ >= options_.max_pending) {
      metrics_->mutation_failures.fetch_add(1, std::memory_order_relaxed);
      return Status::ResourceExhausted(
          "mutation backlog full (" + std::to_string(pending_) +
          " pending); flush or retry");
    }
    StatusOr<PointId> id = quadrant_ != nullptr
                               ? quadrant_->Insert(p, std::move(label))
                               : dynamic_->Insert(p, std::move(label));
    if (!id.ok()) {
      metrics_->mutation_failures.fetch_add(1, std::memory_order_relaxed);
      return id.status();
    }
    ack.point = *id;
    pending_cells_ += quadrant_ != nullptr
                          ? quadrant_->last_insert_recomputed_cells()
                          : dynamic_->last_insert_recomputed_subcells();
    first_pending = pending_ == 0;
    if (first_pending) {
      first_pending_ = std::chrono::steady_clock::now();
      pending_ctx_ = trace::CurrentRequestContext();
    }
    ++pending_;
    metrics_->mutation_pending.store(pending_, std::memory_order_relaxed);
    metrics_->mutation_inserts.fetch_add(1, std::memory_order_relaxed);
    publish_now = options_.window_ms <= 0;
    // Deferred lower bound. When a publish is between its grab and its
    // Install, its generation does not contain this mutation (the grab
    // predates the apply), so the first generation guaranteed to is the
    // one after it; otherwise the next install is the including one.
    ack.generation = publish_in_flight_ ? in_flight_generation_ + 1
                                        : registry_->generation() + 1;
  }
  if (publish_now) {
    ack.generation = Publish();
  } else if (first_pending) {
    cv_.notify_all();  // arm the publisher's window deadline
  }
  return ack;
}

StatusOr<MutationAck> MutationPipeline::Delete(int64_t point) {
  SKYDIA_TRACE_SPAN("mutation.apply");
  MutationAck ack;
  bool publish_now = false;
  bool first_pending = false;
  {
    MutexLock lock(mu_);
    if (Status seeded = EnsureShadowLocked(); !seeded.ok()) {
      metrics_->mutation_failures.fetch_add(1, std::memory_order_relaxed);
      return seeded;
    }
    if (options_.max_pending > 0 && pending_ >= options_.max_pending) {
      metrics_->mutation_failures.fetch_add(1, std::memory_order_relaxed);
      return Status::ResourceExhausted(
          "mutation backlog full (" + std::to_string(pending_) +
          " pending); flush or retry");
    }
    const size_t size = quadrant_ != nullptr ? quadrant_->dataset().size()
                                             : dynamic_->dataset().size();
    if (point < 0 || static_cast<uint64_t>(point) >= size) {
      metrics_->mutation_failures.fetch_add(1, std::memory_order_relaxed);
      return Status::NotFound("unknown point id " + std::to_string(point));
    }
    const auto id = static_cast<PointId>(point);
    Status applied =
        quadrant_ != nullptr ? quadrant_->Delete(id) : dynamic_->Delete(id);
    if (!applied.ok()) {
      metrics_->mutation_failures.fetch_add(1, std::memory_order_relaxed);
      return applied;
    }
    pending_cells_ += quadrant_ != nullptr
                          ? quadrant_->last_delete_recomputed_cells()
                          : dynamic_->last_delete_recomputed_subcells();
    first_pending = pending_ == 0;
    if (first_pending) {
      first_pending_ = std::chrono::steady_clock::now();
      pending_ctx_ = trace::CurrentRequestContext();
    }
    ++pending_;
    metrics_->mutation_pending.store(pending_, std::memory_order_relaxed);
    metrics_->mutation_deletes.fetch_add(1, std::memory_order_relaxed);
    publish_now = options_.window_ms <= 0;
    // Deferred lower bound. When a publish is between its grab and its
    // Install, its generation does not contain this mutation (the grab
    // predates the apply), so the first generation guaranteed to is the
    // one after it; otherwise the next install is the including one.
    ack.generation = publish_in_flight_ ? in_flight_generation_ + 1
                                        : registry_->generation() + 1;
  }
  if (publish_now) {
    ack.generation = Publish();
  } else if (first_pending) {
    cv_.notify_all();
  }
  return ack;
}

uint64_t MutationPipeline::Flush() { return Publish(); }

void MutationPipeline::Reset() {
  // Excluding publish_mu_ waits out an in-flight publish first: state
  // grabbed from the pre-reset shadow is installed (or not) before the
  // reset, never after it.
  MutexLock publish_lock(publish_mu_);
  MutexLock lock(mu_);
  ResetLocked();
}

void MutationPipeline::ResetLocked() {
  quadrant_.reset();
  dynamic_.reset();
  source_path_.clear();
  pending_ = 0;
  pending_cells_ = 0;
  pending_ctx_ = 0;
  metrics_->mutation_pending.store(0, std::memory_order_relaxed);
}

Status MutationPipeline::ReloadAndReset(
    const std::function<Status()>& swap_registry) {
  // The registry swap and the shadow reset share one publish_mu_ critical
  // section: an in-flight publish completes its Install before the swap,
  // and any publish started afterwards finds pending_ == 0 and no-ops —
  // the reloaded snapshot can never be overwritten by pre-reload state.
  MutexLock publish_lock(publish_mu_);
  Status status = swap_registry();
  if (status.ok()) {
    MutexLock lock(mu_);
    ResetLocked();
  }
  return status;
}

uint64_t MutationPipeline::pending() const {
  MutexLock lock(mu_);
  return pending_;
}

MutationDebugState MutationPipeline::DebugState() const {
  MutationDebugState state;
  state.window_ms = options_.window_ms;
  state.max_pending = options_.max_pending;
  MutexLock lock(mu_);
  state.pending = pending_;
  state.pending_cells = pending_cells_;
  state.shadow_seeded = quadrant_ != nullptr || dynamic_ != nullptr;
  if (state.shadow_seeded) {
    state.shadow_age_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                              std::chrono::steady_clock::now() - seeded_at_)
                              .count();
  }
  state.publish_in_flight = publish_in_flight_;
  state.in_flight_generation = publish_in_flight_ ? in_flight_generation_ : 0;
  if (pending_ctx_ != 0) {
    state.pending_rid = trace::RequestIdForToken(pending_ctx_);
  }
  return state;
}

uint64_t MutationPipeline::Publish() {
  MutexLock publish_lock(publish_mu_);
  std::shared_ptr<const Dataset> dataset;
  std::shared_ptr<const CellDiagram> cell;
  std::shared_ptr<const SubcellDiagram> subcell;
  std::string source;
  uint64_t batch = 0;
  uint64_t cells = 0;
  uint64_t ctx = 0;
  {
    MutexLock lock(mu_);
    if (pending_ == 0) return registry_->generation();
    ctx = pending_ctx_;
    pending_ctx_ = 0;
    if (quadrant_ != nullptr) {
      dataset = quadrant_->shared_dataset();
      cell = quadrant_->shared_diagram();
    } else {
      dataset = dynamic_->shared_dataset();
      subcell = dynamic_->shared_diagram();
    }
    source = source_path_;
    batch = pending_;
    cells = pending_cells_;
    pending_ = 0;
    pending_cells_ = 0;
    metrics_->mutation_pending.store(0, std::memory_order_relaxed);
    // Every Install is serialized under publish_mu_, so this publish lands
    // at exactly generation + 1; record it so deferred acks issued while
    // the build runs bound past it (this grab does not contain them).
    in_flight_generation_ = registry_->generation() + 1;
    publish_in_flight_ = true;
  }
  // Build and install outside mu_: writers keep applying to the shadow
  // (its state is immutable snapshots; the grab above stays valid) and
  // readers keep serving the old snapshot until the Install swap.
  //
  // The publish span runs under the first pending mutation's request
  // context (when it carried one), so a windowed publish on the publisher
  // thread traces back to the request that opened the coalescing window.
  trace::ScopedRequestContext ctx_scope(
      ctx != 0 ? ctx : trace::CurrentRequestContext());
  SKYDIA_TRACE_SPAN("mutation.publish");
  const uint64_t start_ns = trace::NowNanos();
  ServableDiagram wrapped =
      cell != nullptr ? ServableDiagram::Wrap(std::move(dataset), cell,
                                              SkylineQueryType::kQuadrant,
                                              options_.engine)
                      : ServableDiagram::Wrap(std::move(dataset), subcell,
                                              options_.engine);
  const size_t points = wrapped.engine().dataset().size();
  const uint64_t generation = registry_->Install(
      std::move(wrapped), std::move(source), options_.cache,
      options_.sharding);
  {
    MutexLock lock(mu_);
    publish_in_flight_ = false;
  }
  const uint64_t publish_ns = trace::NowNanos() - start_ns;
  metrics_->RecordMutationPublish(publish_ns);
  metrics_->mutation_publishes.fetch_add(1, std::memory_order_relaxed);
  metrics_->mutation_cells_recomputed.fetch_add(cells,
                                                std::memory_order_relaxed);
  metrics_->mutation_last_publish_mutations.store(batch,
                                                  std::memory_order_relaxed);
  metrics_->mutation_last_publish_cells.store(cells,
                                              std::memory_order_relaxed);
  metrics_->mutation_last_publish_ns.store(publish_ns,
                                           std::memory_order_relaxed);
  metrics_->mutation_points_live.store(points, std::memory_order_relaxed);
  return generation;
}

void MutationPipeline::PublisherLoop() {
  const auto window =
      std::chrono::milliseconds(std::max(options_.window_ms, 1));
  for (;;) {
    bool due = false;
    {
      MutexLock lock(mu_);
      while (!stop_ && pending_ == 0) cv_.wait(lock.native());
      if (stop_) return;
      const auto deadline = first_pending_ + window;
      cv_.wait_until(lock.native(), deadline);
      if (stop_) return;
      due = pending_ > 0 && std::chrono::steady_clock::now() >= deadline;
    }
    if (due) Publish();
  }
}

}  // namespace skydia::serve
