// MutationPipeline: the serve-side write path over the incremental diagrams.
//
// Mutations ({"cmd":"insert"}, {"cmd":"delete"}) apply synchronously to a
// private *shadow* diagram — an IncrementalQuadrantDiagram or
// IncrementalDynamicDiagram seeded lazily from the currently served
// snapshot — under one mutex, so writers are serialized and each request
// gets its own success/error reply. Readers never see the shadow: they keep
// serving the registry's current immutable snapshot.
//
// Publishing is what makes a mutation visible, and it is decoupled from
// applying: the shadow's dataset/diagram are immutable snapshots behind
// shared_ptrs, so a publish grabs the current pair, wraps it into a
// ServableDiagram (index build) and Install()s it on the registry — the
// same RCU hot-swap path a reload takes, with a bumped generation and a
// fresh cache + sharded view. In-flight read batches keep their pinned
// snapshot; readers never block on writers.
//
// Coalescing: with window_ms > 0 a background publisher thread publishes
// once per window, batching every mutation applied since the last publish
// into one index rebuild ({"cmd":"flush"} publishes immediately). With
// window_ms <= 0 every mutation publishes synchronously before its ack.
//
// Ack generations: a synchronous publish acks the exact generation now
// serving the mutation. A deferred (windowed) ack carries a lower bound —
// the mutation is visible once reply "gen" values reach at least that
// number. The bound accounts for a publish already between its state grab
// and its Install (that publish predates the mutation, so the bound is its
// generation + 1). Generations stay monotonic either way (Install under
// the registry's lock).
//
// Backpressure: when more than max_pending mutations are waiting for a
// publish, further mutations are rejected with ResourceExhausted
// ("mutation backlog full ..."), which the protocol layer maps to the
// "overloaded" error code.
//
// Interaction with reload: a successful reload makes the shadow stale, so
// the server runs the reload through ReloadAndReset() — the registry swap
// and the shadow reset happen under the publish lock, so a publish that
// grabbed pre-reload shadow state can never Install() after the reload and
// silently revert it. Unpublished mutations are discarded and the next
// mutation re-seeds from the reloaded snapshot. Mutations are in-memory
// only; they do not rewrite the source blob.
//
// Supported families: quadrant cell snapshots and dynamic subcell
// snapshots. Global-semantics snapshots reject mutations (a point outside
// every quadrant still shifts global results everywhere; no incremental
// maintenance is implemented for them).
#ifndef SKYDIA_SRC_SERVE_MUTATION_PIPELINE_H_
#define SKYDIA_SRC_SERVE_MUTATION_PIPELINE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <thread>

#include "src/common/annotations.h"
#include "src/common/status.h"
#include "src/core/incremental.h"
#include "src/core/incremental_dynamic.h"
#include "src/core/query_engine.h"
#include "src/core/sharded_diagram.h"
#include "src/geometry/point.h"
#include "src/serve/metrics.h"
#include "src/serve/result_cache.h"
#include "src/serve/snapshot_registry.h"

namespace skydia::serve {

/// Options for MutationPipeline (the server copies these out of its own
/// ServerOptions so published snapshots serve exactly like loaded ones).
struct MutationPipelineOptions {
  /// Publish coalescing window in milliseconds. <= 0 publishes every
  /// mutation synchronously before its ack; > 0 batches all mutations of a
  /// window into one publish on a background thread.
  int window_ms = 0;
  /// Mutations allowed to wait for one publish before new ones are
  /// rejected as overloaded. 0 disables the cap.
  size_t max_pending = 4096;
  /// Enforce the distinct-coordinates invariant on insert (the
  /// duplicate_coordinate protocol error).
  bool require_distinct = false;
  /// How published snapshots are wrapped and re-striped — mirror the
  /// server's serving options.
  QueryEngineOptions engine;
  ResultCacheOptions cache;
  ShardingOptions sharding;
};

/// Point-in-time introspection of the write path, rendered by the server's
/// GET /debug/snapshot endpoint. A consistent read of the pipeline's state
/// under mu_ — values may be stale by the time the caller renders them.
struct MutationDebugState {
  uint64_t pending = 0;        ///< mutations applied but unpublished
  uint64_t pending_cells = 0;  ///< cells recomputed by those mutations
  bool shadow_seeded = false;  ///< a shadow diagram exists
  int64_t shadow_age_ms = 0;   ///< ms since the shadow was seeded (0 if none)
  bool publish_in_flight = false;  ///< a publish is between grab and Install
  uint64_t in_flight_generation = 0;  ///< its target generation (else 0)
  /// Request id of the first pending mutation ("" when none carried one) —
  /// the request a windowed publish is coalescing on behalf of.
  std::string pending_rid;
  int window_ms = 0;        ///< configured coalescing window
  uint64_t max_pending = 0;  ///< configured backlog cap (0 = unlimited)
};

/// One mutation's acknowledgement.
struct MutationAck {
  /// Generation serving the mutation (synchronous publish) or a lower
  /// bound on it (deferred publish; see the header comment).
  uint64_t generation = 0;
  /// The inserted point's id (inserts only; Delete leaves it 0).
  PointId point = 0;
};

/// The write path. Thread-safe; `registry` and `metrics` must outlive it.
class MutationPipeline {
 public:
  MutationPipeline(SnapshotRegistry* registry, ServerMetrics* metrics,
                   const MutationPipelineOptions& options);
  ~MutationPipeline();

  MutationPipeline(const MutationPipeline&) = delete;
  MutationPipeline& operator=(const MutationPipeline&) = delete;

  /// Applies one insert to the shadow diagram. Errors (outside the domain,
  /// duplicated coordinate under require_distinct, backlog full,
  /// unsupported snapshot family) leave the shadow unchanged.
  StatusOr<MutationAck> Insert(const Point2D& p,
                               std::optional<std::string> label)
      SKYDIA_EXCLUDES(publish_mu_, mu_);

  /// Applies one delete. `point` is validated against the shadow dataset
  /// (NotFound -> the unknown_point protocol error). Ids above it shift
  /// down by one, exactly like IncrementalQuadrantDiagram::Delete.
  StatusOr<MutationAck> Delete(int64_t point)
      SKYDIA_EXCLUDES(publish_mu_, mu_);

  /// Publishes everything pending now (no-op when nothing is pending) and
  /// returns the current generation afterwards.
  uint64_t Flush() SKYDIA_EXCLUDES(publish_mu_, mu_);

  /// Drops the shadow and all unpublished mutations; the next mutation
  /// re-seeds from the registry's then-current snapshot. Waits out an
  /// in-flight publish first, so nothing grabbed from the pre-reset shadow
  /// installs afterwards. For a reload, use ReloadAndReset instead: the
  /// registry swap itself must happen under the same publish exclusion.
  void Reset() SKYDIA_EXCLUDES(publish_mu_, mu_);

  /// Runs `swap_registry` — a callback that swaps the registry's snapshot,
  /// typically SnapshotRegistry::Reload — serialized against publishes,
  /// then on success drops the shadow exactly like Reset(). Holding the
  /// publish lock across swap + reset closes the race where a publish that
  /// grabbed pre-reload shadow state installs *after* the reload with a
  /// higher generation, silently reverting the reloaded data.
  Status ReloadAndReset(const std::function<Status()>& swap_registry)
      SKYDIA_EXCLUDES(publish_mu_, mu_);

  /// Mutations applied but not yet published.
  uint64_t pending() const SKYDIA_EXCLUDES(mu_);

  /// Consistent snapshot of the pipeline's state for /debug/snapshot.
  MutationDebugState DebugState() const SKYDIA_EXCLUDES(mu_);

  /// Stops the publisher thread without publishing what is pending.
  /// Idempotent; also run by the destructor.
  void Stop() SKYDIA_EXCLUDES(mu_);

 private:
  /// Seeds the shadow from the registry's current snapshot when absent.
  Status EnsureShadowLocked() SKYDIA_REQUIRES(mu_);
  /// Reset()'s body, for callers already holding the locks.
  void ResetLocked() SKYDIA_REQUIRES(mu_);
  /// Serialized grab-build-install of the shadow's current state. Returns
  /// the generation current after the call (published or pre-existing).
  uint64_t Publish() SKYDIA_EXCLUDES(publish_mu_, mu_);
  void PublisherLoop() SKYDIA_EXCLUDES(publish_mu_, mu_);

  SnapshotRegistry* registry_;
  ServerMetrics* metrics_;
  MutationPipelineOptions options_;

  mutable Mutex mu_;
  /// Exactly one of the two shadows is set once seeded (quadrant cell vs
  /// dynamic subcell family, chosen by the seeding snapshot).
  std::unique_ptr<IncrementalQuadrantDiagram> quadrant_ SKYDIA_GUARDED_BY(mu_);
  std::unique_ptr<IncrementalDynamicDiagram> dynamic_ SKYDIA_GUARDED_BY(mu_);
  std::string source_path_ SKYDIA_GUARDED_BY(mu_);
  uint64_t pending_ SKYDIA_GUARDED_BY(mu_) = 0;
  uint64_t pending_cells_ SKYDIA_GUARDED_BY(mu_) = 0;
  std::chrono::steady_clock::time_point first_pending_ SKYDIA_GUARDED_BY(mu_);
  /// Request-context token of the first pending mutation (0 = none). The
  /// publish that drains the batch runs its span under this context, so a
  /// windowed publish traces back to the request that opened the window.
  uint64_t pending_ctx_ SKYDIA_GUARDED_BY(mu_) = 0;
  /// When the shadow was seeded (meaningful only while one exists).
  std::chrono::steady_clock::time_point seeded_at_ SKYDIA_GUARDED_BY(mu_);
  bool stop_ SKYDIA_GUARDED_BY(mu_) = false;
  std::condition_variable cv_;

  /// True between a publish's state grab and its Install;
  /// `in_flight_generation_` is the generation that publish will install
  /// at — exact, because every Install in a serving process happens under
  /// publish_mu_ (publishes here, reloads via ReloadAndReset). A deferred
  /// ack issued during that span must exceed it: the in-flight publish
  /// grabbed state from before the mutation, so the generation it installs
  /// does not contain the write.
  bool publish_in_flight_ SKYDIA_GUARDED_BY(mu_) = false;
  uint64_t in_flight_generation_ SKYDIA_GUARDED_BY(mu_) = 0;

  /// Serializes publishes so an older grab can never Install() after a
  /// newer one. Acquired before mu_ (grab happens under both, the
  /// build+install under publish_mu_ alone so writers keep applying).
  Mutex publish_mu_;

  std::thread publisher_;  ///< only started when window_ms > 0
};

}  // namespace skydia::serve

#endif  // SKYDIA_SRC_SERVE_MUTATION_PIPELINE_H_
