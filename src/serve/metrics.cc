#include "src/serve/metrics.h"

#include <array>
#include <cstdio>
#include <vector>

#include "src/common/version.h"

namespace skydia::serve {

namespace {

void Counter(const char* name, const char* help, uint64_t value,
             std::string* out) {
  out->append("# HELP ").append(name).append(" ").append(help).push_back('\n');
  out->append("# TYPE ").append(name).append(" counter\n");
  out->append(name).append(" ").append(std::to_string(value)).push_back('\n');
}

void Gauge(const char* name, const char* help, double value,
           std::string* out) {
  out->append("# HELP ").append(name).append(" ").append(help).push_back('\n');
  out->append("# TYPE ").append(name).append(" gauge\n");
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  out->append(name).append(" ").append(buf).push_back('\n');
}

/// Cumulative Prometheus histogram from the engine's log2 buckets: bucket b
/// counts samples in [2^b, 2^(b+1)) ns, so its upper bound is le="2^(b+1)".
/// Trailing empty buckets collapse into +Inf (they add no information and
/// 2^48 ns upper bounds only bloat the scrape).
void LatencyHistogram(const QueryEngineStats& engine, std::string* out) {
  const char* name = "skydia_query_latency_ns";
  out->append("# HELP ").append(name).append(
      " Sampled engine query latency in nanoseconds.\n");
  out->append("# TYPE ").append(name).append(" histogram\n");
  size_t last = 0;
  for (size_t b = 0; b < engine.latency_bucket_counts.size(); ++b) {
    if (engine.latency_bucket_counts[b] > 0) last = b;
  }
  uint64_t cumulative = 0;
  for (size_t b = 0; b <= last; ++b) {
    cumulative += engine.latency_bucket_counts[b];
    out->append(name).append("_bucket{le=\"");
    out->append(std::to_string(uint64_t{1} << (b + 1)));
    out->append("\"} ").append(std::to_string(cumulative)).push_back('\n');
  }
  out->append(name).append("_bucket{le=\"+Inf\"} ");
  out->append(std::to_string(engine.latency_samples)).push_back('\n');
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", engine.approx_latency_sum_ns);
  out->append(name).append("_sum ").append(buf).push_back('\n');
  out->append(name).append("_count ");
  out->append(std::to_string(engine.latency_samples)).push_back('\n');
}

/// Cumulative histogram of the reactor's loop-iteration latency, same log2
/// bucket scheme as the query-latency histogram. Omitted entirely while no
/// iteration has been recorded (thread-per-connection embedders, tests).
void ReactorLoopHistogram(const ServerMetrics& metrics, std::string* out) {
  uint64_t total = 0;
  size_t last = 0;
  std::array<uint64_t, ServerMetrics::kReactorLoopBuckets> counts{};
  for (size_t b = 0; b < counts.size(); ++b) {
    counts[b] = metrics.reactor_loop_ns[b].load(std::memory_order_relaxed);
    total += counts[b];
    if (counts[b] > 0) last = b;
  }
  if (total == 0) return;
  const char* name = "skydia_reactor_loop_ns";
  out->append("# HELP ").append(name).append(
      " Reactor event-loop iteration latency in nanoseconds.\n");
  out->append("# TYPE ").append(name).append(" histogram\n");
  uint64_t cumulative = 0;
  double sum = 0;
  for (size_t b = 0; b <= last; ++b) {
    cumulative += counts[b];
    sum += static_cast<double>(counts[b]) * 1.5 *
           static_cast<double>(uint64_t{1} << b);
    out->append(name).append("_bucket{le=\"");
    out->append(std::to_string(uint64_t{1} << (b + 1)));
    out->append("\"} ").append(std::to_string(cumulative)).push_back('\n');
  }
  out->append(name).append("_bucket{le=\"+Inf\"} ");
  out->append(std::to_string(total)).push_back('\n');
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", sum);
  out->append(name).append("_sum ").append(buf).push_back('\n');
  out->append(name).append("_count ");
  out->append(std::to_string(total)).push_back('\n');
}

/// Cumulative histogram over log2-ns buckets rendered in seconds (upper
/// bound of bucket b is 2^(b+1) ns / 1e9). Trailing empty buckets collapse
/// into +Inf; an all-empty histogram still renders (+Inf/_sum/_count), so a
/// scrape sees every family from the first sample on.
void SecondsHistogram(const char* name, const char* help,
                      const std::array<std::atomic<uint64_t>,
                                       ServerMetrics::kDurationBuckets>& ns,
                      uint64_t sum_ns, uint64_t count, std::string* out) {
  out->append("# HELP ").append(name).append(" ").append(help).push_back('\n');
  out->append("# TYPE ").append(name).append(" histogram\n");
  std::array<uint64_t, ServerMetrics::kDurationBuckets> counts{};
  size_t last = 0;
  for (size_t b = 0; b < counts.size(); ++b) {
    counts[b] = ns[b].load(std::memory_order_relaxed);
    if (counts[b] > 0) last = b;
  }
  char buf[64];
  uint64_t cumulative = 0;
  if (count > 0) {
    for (size_t b = 0; b <= last; ++b) {
      cumulative += counts[b];
      std::snprintf(buf, sizeof(buf), "%.9g",
                    static_cast<double>(uint64_t{1} << (b + 1)) / 1e9);
      out->append(name).append("_bucket{le=\"").append(buf);
      out->append("\"} ").append(std::to_string(cumulative)).push_back('\n');
    }
  }
  out->append(name).append("_bucket{le=\"+Inf\"} ");
  out->append(std::to_string(count)).push_back('\n');
  std::snprintf(buf, sizeof(buf), "%.9g", static_cast<double>(sum_ns) / 1e9);
  out->append(name).append("_sum ").append(buf).push_back('\n');
  out->append(name).append("_count ");
  out->append(std::to_string(count)).push_back('\n');
}

/// One `name{shard="i"} value` sample line.
void ShardSample(const char* name, size_t shard, uint64_t value,
                 std::string* out) {
  out->append(name).append("{shard=\"").append(std::to_string(shard));
  out->append("\"} ").append(std::to_string(value)).push_back('\n');
}

}  // namespace

bool GuardedDecrement(std::atomic<uint64_t>* gauge) {
  uint64_t current = gauge->load(std::memory_order_relaxed);
  while (current > 0) {
    if (gauge->compare_exchange_weak(current, current - 1,
                                     std::memory_order_relaxed)) {
      return true;
    }
  }
  return false;
}

std::string RenderPrometheusMetrics(const ServerMetrics& metrics,
                                    const ServingSnapshot* snapshot,
                                    double uptime_seconds) {
  const auto load = [](const std::atomic<uint64_t>& a) {
    return a.load(std::memory_order_relaxed);
  };
  std::string out;
  out.reserve(4096);

  Counter("skydia_connections_opened_total", "Accepted TCP connections.",
          load(metrics.connections_opened), &out);
  Gauge("skydia_connections_open", "Currently open connections.",
        static_cast<double>(load(metrics.connections_open)), &out);
  Counter("skydia_connections_rejected_total",
          "Connections rejected at the max_connections cap.",
          load(metrics.connections_rejected), &out);
  Counter("skydia_requests_total", "Request lines processed.",
          load(metrics.requests_total), &out);
  Counter("skydia_error_replies_total", "Error reply lines sent.",
          load(metrics.error_replies), &out);
  Counter("skydia_malformed_requests_total",
          "Request lines rejected by the parser.",
          load(metrics.malformed_requests), &out);
  Counter("skydia_oversize_disconnects_total",
          "Connections closed for exceeding max_request_bytes.",
          load(metrics.oversize_disconnects), &out);
  Counter("skydia_idle_disconnects_total",
          "Connections closed by the idle timeout.",
          load(metrics.idle_disconnects), &out);
  Counter("skydia_backpressure_disconnects_total",
          "Connections dropped at the write-backpressure cap.",
          load(metrics.backpressure_disconnects), &out);
  Counter("skydia_half_closed_drains_total",
          "Half-closed connections whose reply tail was flushed.",
          load(metrics.half_closed_drains), &out);
  Counter("skydia_worker_batches_total",
          "Request batches executed by the worker pool.",
          load(metrics.worker_batches), &out);
  Counter("skydia_inline_batches_total",
          "Small query batches executed inline on the event-loop thread.",
          load(metrics.inline_batches), &out);
  Gauge("skydia_worker_queue_depth",
        "Batches queued for or running on the worker pool.",
        static_cast<double>(load(metrics.worker_queue_depth)), &out);
  ReactorLoopHistogram(metrics, &out);
  Gauge("skydia_reactor_loop_lag_seconds",
        "Seconds between the two most recent reactor wakeups.",
        static_cast<double>(load(metrics.reactor_loop_lag_ns)) / 1e9, &out);
  SecondsHistogram("skydia_request_duration_seconds",
                   "End-to-end batch duration (parse, answer, render).",
                   metrics.request_duration_ns,
                   load(metrics.request_duration_sum_ns),
                   load(metrics.request_duration_count), &out);
  SecondsHistogram("skydia_mutation_publish_duration_seconds",
                   "Mutation publish duration (grab, wrap, install).",
                   metrics.mutation_publish_ns,
                   load(metrics.mutation_publish_sum_ns),
                   load(metrics.mutation_publish_count), &out);
  Counter("skydia_bytes_received_total", "Bytes read from clients.",
          load(metrics.bytes_received), &out);
  Counter("skydia_bytes_sent_total", "Bytes written to clients.",
          load(metrics.bytes_sent), &out);
  Counter("skydia_reloads_total", "Successful snapshot reloads.",
          load(metrics.reloads), &out);
  Counter("skydia_reload_failures_total",
          "Reload attempts that kept the old snapshot.",
          load(metrics.reload_failures), &out);
  Counter("skydia_mutation_inserts_total", "Insert mutations applied.",
          load(metrics.mutation_inserts), &out);
  Counter("skydia_mutation_deletes_total", "Delete mutations applied.",
          load(metrics.mutation_deletes), &out);
  Counter("skydia_mutation_failures_total", "Mutation requests rejected.",
          load(metrics.mutation_failures), &out);
  Counter("skydia_mutation_publishes_total",
          "Mutation batches published as new snapshots.",
          load(metrics.mutation_publishes), &out);
  Counter("skydia_mutation_cells_recomputed_total",
          "Cells recomputed by the incremental mutation path.",
          load(metrics.mutation_cells_recomputed), &out);
  Gauge("skydia_mutation_pending",
        "Mutations applied to the shadow but not yet published.",
        static_cast<double>(load(metrics.mutation_pending)), &out);
  Gauge("skydia_mutation_points_live",
        "Points in the last published mutation snapshot.",
        static_cast<double>(load(metrics.mutation_points_live)), &out);
  Gauge("skydia_mutation_last_publish_ns",
        "Wrap-and-install latency of the last mutation publish.",
        static_cast<double>(load(metrics.mutation_last_publish_ns)), &out);
  Gauge("skydia_mutation_last_publish_mutations",
        "Mutations coalesced into the last publish.",
        static_cast<double>(load(metrics.mutation_last_publish_mutations)),
        &out);
  Gauge("skydia_mutation_last_publish_cells",
        "Cells recomputed across the last publish's batch.",
        static_cast<double>(load(metrics.mutation_last_publish_cells)), &out);
  Gauge("skydia_uptime_seconds", "Seconds since the server started.",
        uptime_seconds, &out);

  if (snapshot == nullptr) return out;

  Gauge("skydia_snapshot_generation", "Generation of the serving snapshot.",
        static_cast<double>(snapshot->generation), &out);
  Gauge("skydia_snapshot_points", "Points in the serving dataset.",
        static_cast<double>(snapshot->serving().point_count()), &out);

  const QueryEngineStats engine = snapshot->serving().engine().Stats();
  Counter("skydia_queries_served_total",
          "Queries answered by the current snapshot's engine.",
          engine.queries_served, &out);
  Counter("skydia_oracle_fallbacks_total",
          "Queries answered by the brute-force oracle.",
          engine.oracle_fallbacks, &out);
  if (uptime_seconds > 0) {
    Gauge("skydia_queries_per_second",
          "Engine queries averaged over the uptime.",
          static_cast<double>(engine.queries_served) / uptime_seconds, &out);
  }
  Gauge("skydia_query_latency_p50_ns",
        "Median engine latency (sampled, log2 buckets).",
        engine.p50_latency_ns, &out);
  Gauge("skydia_query_latency_p99_ns",
        "p99 engine latency (sampled, log2 buckets).", engine.p99_latency_ns,
        &out);
  LatencyHistogram(engine, &out);

  if (snapshot->serving().num_shards() > 1) {
    const std::vector<ShardStats> shards = snapshot->serving().shard_stats();
    Gauge("skydia_shards", "Row-stripe shards in the serving snapshot.",
          static_cast<double>(shards.size()), &out);
    out.append(
        "# HELP skydia_shard_queries_total Queries routed to each "
        "row-stripe shard.\n# TYPE skydia_shard_queries_total counter\n");
    for (size_t s = 0; s < shards.size(); ++s) {
      ShardSample("skydia_shard_queries_total", s, shards[s].queries, &out);
    }
    out.append(
        "# HELP skydia_shard_memo_hits_total Shard queries answered from "
        "the shard memo.\n# TYPE skydia_shard_memo_hits_total counter\n");
    for (size_t s = 0; s < shards.size(); ++s) {
      ShardSample("skydia_shard_memo_hits_total", s, shards[s].memo_hits,
                  &out);
    }
    out.append(
        "# HELP skydia_shard_queue_depth Scatter batches queued or running "
        "per shard.\n# TYPE skydia_shard_queue_depth gauge\n");
    for (size_t s = 0; s < shards.size(); ++s) {
      ShardSample("skydia_shard_queue_depth", s, shards[s].queue_depth, &out);
    }
  }

  // Info-pattern gauge: constant 1, the payload lives in the labels.
  out.append(
      "# HELP skydia_build_info Version and dataset of the serving "
      "snapshot.\n# TYPE skydia_build_info gauge\n");
  out.append("skydia_build_info{version=\"").append(kVersion);
  out.append("\",commit=\"").append(BuildCommit());
  out.append("\",generation=\"")
      .append(std::to_string(snapshot->generation));
  out.append("\",points=\"")
      .append(std::to_string(snapshot->serving().point_count()));
  out.append("\",cells=\"")
      .append(
          std::to_string(snapshot->serving().engine().index().num_cells()));
  out.append("\"} 1\n");

  const ResultCacheStats cache = snapshot->cache->Stats();
  Counter("skydia_cache_hits_total", "Result cache hits.", cache.hits, &out);
  Counter("skydia_cache_misses_total", "Result cache misses.", cache.misses,
          &out);
  Counter("skydia_cache_evictions_total", "Result cache evictions.",
          cache.evictions, &out);
  Gauge("skydia_cache_entries", "Resident result cache entries.",
        static_cast<double>(cache.entries), &out);
  Gauge("skydia_cache_value_bytes", "Resident result cache payload bytes.",
        static_cast<double>(cache.value_bytes), &out);
  const uint64_t probes = cache.hits + cache.misses;
  Gauge("skydia_cache_hit_ratio",
        "Hits over lookups for the current snapshot's cache.",
        probes == 0 ? 0.0
                    : static_cast<double>(cache.hits) /
                          static_cast<double>(probes),
        &out);
  return out;
}

}  // namespace skydia::serve
