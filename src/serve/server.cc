#include "src/serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

#include "src/common/logging.h"
#include "src/common/trace.h"
#include "src/serve/protocol.h"

namespace skydia::serve {

namespace {

/// epoll user-data tags for the two non-connection fds; Connection pointers
/// are heap-allocated and can never collide with these values.
constexpr uint64_t kListenTag = 0;
constexpr uint64_t kWakeTag = 1;

/// Cache key for one rendered reply array: the interned set id tagged with
/// the representation bit (ids vs labels). SetIds are snapshot-local and the
/// cache lives on the snapshot, so this key is collision-free by design.
/// With sharding the ids stay global (all stripes share the interned pool),
/// so the key is also shard-agnostic: every shard's hit on the same result
/// set lands on the same entry.
uint64_t CacheKey(SetId set, bool labels) {
  return (static_cast<uint64_t>(set) << 1) | (labels ? 1u : 0u);
}

/// Appends one complete HTTP/1.1 response (status line, Content-Type,
/// Content-Length, Connection: close) to `out`.
void AppendHttpResponse(const char* status_line, const char* content_type,
                        std::string_view body, std::string* out) {
  out->append(status_line).append("\r\nContent-Type: ").append(content_type);
  out->append("\r\nContent-Length: ")
      .append(std::to_string(body.size()))
      .append("\r\nConnection: close\r\n\r\n")
      .append(body);
}

/// Resolves the request-context token for one line batch: the first
/// client-supplied "rid" wins, else a fresh server token. A raw scan, not a
/// parse — the reactor must not pay per-line parsing, and a false positive
/// (the literal inside a string value) merely names the batch oddly. Rids
/// containing escapes fall back to a server token; ParseRequest still
/// surfaces the exact client rid on the reply.
uint64_t BatchRequestContext(std::string_view batch) {
  const size_t pos = batch.find("\"rid\":\"");
  if (pos != std::string_view::npos) {
    const size_t begin = pos + 7;
    const size_t end = batch.find('"', begin);
    if (end != std::string_view::npos) {
      const std::string_view rid = batch.substr(begin, end - begin);
      // Mirror protocol.cc's ValidateRid bounds: an id the parser would
      // reject must not be interned (or echoed) as the batch context.
      if (!rid.empty() && rid.size() <= 64 &&
          rid.find('\\') == std::string_view::npos) {
        return trace::RegisterRequestId(rid);
      }
    }
  }
  return trace::NextServerRequestToken();
}

/// Splits '\n'-terminated request bytes into per-line views (CR stripped).
void SplitLines(std::string_view view, std::vector<std::string_view>* lines) {
  size_t start = 0;
  for (size_t nl = view.find('\n', start); nl != std::string_view::npos;
       nl = view.find('\n', start)) {
    std::string_view line = view.substr(start, nl - start);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    lines->push_back(line);
    start = nl + 1;
  }
}

/// Renders the {"cmd":"stats"} reply body: one flat JSON object of the
/// engine's, shards' and cache's counters for the pinned snapshot.
std::string RenderStatsJson(const ServingSnapshot* snapshot) {
  if (snapshot == nullptr) return "{}";
  const QueryEngineStats engine = snapshot->serving().engine().Stats();
  const ResultCacheStats cache = snapshot->cache->Stats();
  std::string out;
  out.reserve(256);
  out.push_back('{');
  const auto field = [&out](const char* name, uint64_t value, bool first) {
    if (!first) out.push_back(',');
    out.push_back('"');
    out.append(name);
    out.append("\":");
    out.append(std::to_string(value));
  };
  uint64_t shard_queries = 0;
  uint64_t shard_memo_hits = 0;
  const auto num_shards =
      static_cast<uint64_t>(snapshot->serving().num_shards());
  for (const ShardStats& shard : snapshot->serving().shard_stats()) {
    shard_queries += shard.queries;
    shard_memo_hits += shard.memo_hits;
  }
  field("generation", snapshot->generation, /*first=*/true);
  field("points", snapshot->serving().point_count(), false);
  field("shards", num_shards, false);
  field("queries_served", engine.queries_served + shard_queries, false);
  field("memo_hits", engine.memo_hits + shard_memo_hits, false);
  field("oracle_fallbacks", engine.oracle_fallbacks, false);
  field("p50_latency_ns", static_cast<uint64_t>(engine.p50_latency_ns),
        false);
  field("p99_latency_ns", static_cast<uint64_t>(engine.p99_latency_ns),
        false);
  field("cache_hits", cache.hits, false);
  field("cache_misses", cache.misses, false);
  field("cache_evictions", cache.evictions, false);
  field("cache_entries", cache.entries, false);
  out.push_back('}');
  return out;
}

}  // namespace

SkylineServer::SkylineServer(const ServerOptions& options)
    : options_(options) {
  options_.num_workers = std::max(1, options_.num_workers);
}

SkylineServer::~SkylineServer() { Stop(); }

Status SkylineServer::BindAndListen() {
  listen_fd_ =
      ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("unparseable listen host \"" +
                                   options_.host + "\"");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Status::Internal("bind " + options_.host + ":" +
                            std::to_string(options_.port) + ": " +
                            std::strerror(errno));
  }
  if (::listen(listen_fd_, 128) < 0) {
    return Status::Internal(std::string("listen: ") + std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    return Status::Internal(std::string("getsockname: ") +
                            std::strerror(errno));
  }
  port_ = ntohs(addr.sin_port);
  return Status::OK();
}

Status SkylineServer::Start(const std::string& blob_path) {
  auto loaded =
      ServableDiagram::Load(blob_path, options_.engine, options_.cell_semantics);
  if (!loaded.ok()) return loaded.status();
  return Start(std::move(loaded).value(), blob_path);
}

Status SkylineServer::Start(ServableDiagram diagram, std::string source_path) {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("server already running");
  }
  const ShardingOptions sharding{options_.num_shards,
                                 options_.engine.memo_entries};
  registry_.Install(std::move(diagram), std::move(source_path),
                    options_.cache, sharding);
  MutationPipelineOptions mutation_options;
  mutation_options.window_ms = options_.mutation_window_ms;
  mutation_options.max_pending = options_.mutation_max_pending;
  mutation_options.require_distinct = options_.mutation_require_distinct;
  mutation_options.engine = options_.engine;
  mutation_options.cache = options_.cache;
  mutation_options.sharding = sharding;
  mutations_ = std::make_unique<MutationPipeline>(&registry_, &metrics_,
                                                  mutation_options);
  auto bound = BindAndListen();
  if (!bound.ok()) {
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return bound;
  }
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    const Status status =
        Status::Internal(std::string("epoll/eventfd: ") +
                         std::strerror(errno));
    for (int* fd : {&listen_fd_, &epoll_fd_, &wake_fd_}) {
      if (*fd >= 0) ::close(*fd);
      *fd = -1;
    }
    return status;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kListenTag;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.u64 = kWakeTag;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  if (options_.idle_timeout_ms > 0) {
    // Ceil so a full wheel revolution is never shorter than the timeout.
    wheel_tick_ms_ = std::max<int64_t>(
        1, (options_.idle_timeout_ms + static_cast<int64_t>(kWheelSlots) - 3) /
               (static_cast<int64_t>(kWheelSlots) - 2));
    wheel_.assign(kWheelSlots, {});
    wheel_last_tick_ =
        static_cast<int64_t>(trace::NowNanos() / 1'000'000) / wheel_tick_ms_;
  } else {
    wheel_tick_ms_ = 0;
  }

  if (options_.engine.num_threads > 1) {
    shard_pool_ = std::make_unique<ThreadPool>(
        static_cast<size_t>(options_.engine.num_threads));
  }

  start_time_ = std::chrono::steady_clock::now();
  running_.store(true, std::memory_order_release);
  workers_.reserve(static_cast<size_t>(options_.num_workers));
  for (int i = 0; i < options_.num_workers; ++i) {
    workers_.emplace_back([this, i] {
      trace::SetThreadName("serve-worker-" + std::to_string(i));
      WorkerLoop();
    });
  }
  reactor_ = std::thread([this] { ReactorLoop(); });
  return Status::OK();
}

void SkylineServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // Wake the reactor out of epoll_wait; it closes every connection before
  // exiting, so the gauge drains to zero.
  const uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
  if (reactor_.joinable()) reactor_.join();
  {
    MutexLock lock(jobs_mu_);
    workers_stop_ = true;
  }
  jobs_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();
  {
    MutexLock lock(jobs_mu_);
    workers_stop_ = false;
    jobs_.clear();
  }
  {
    MutexLock lock(completions_mu_);
    completions_.clear();
  }
  shard_pool_.reset();
  mutations_.reset();  // joins the publisher thread
  for (int* fd : {&listen_fd_, &epoll_fd_, &wake_fd_}) {
    if (*fd >= 0) ::close(*fd);
    *fd = -1;
  }
}

Status SkylineServer::Reload(const std::string& path) {
  const ShardingOptions sharding{options_.num_shards,
                                 options_.engine.memo_entries};
  const auto swap = [&] {
    return registry_.Reload(path, options_.engine, options_.cell_semantics,
                            options_.cache, sharding);
  };
  // The registry swap and the shadow reset must share the pipeline's
  // publish exclusion: a publish that grabbed pre-reload shadow state
  // would otherwise Install() after the swap with a higher generation and
  // silently revert the reloaded data. ReloadAndReset also discards any
  // unpublished mutations; the next mutation re-seeds from the reloaded
  // file.
  const Status status =
      mutations_ != nullptr ? mutations_->ReloadAndReset(swap) : swap();
  if (status.ok()) {
    metrics_.reloads.fetch_add(1, std::memory_order_relaxed);
  } else {
    metrics_.reload_failures.fetch_add(1, std::memory_order_relaxed);
  }
  return status;
}

std::string SkylineServer::RenderMetrics() const {
  const auto snapshot = registry_.Current();
  const double uptime =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_time_)
          .count();
  return RenderPrometheusMetrics(metrics_, snapshot.get(), uptime);
}

// ---------------------------------------------------------------------------
// Event loop.

void SkylineServer::ReactorLoop() {
  trace::SetThreadName("serve-reactor");
  constexpr int kMaxEvents = 256;
  epoll_event events[kMaxEvents];
  uint64_t last_wake_ns = 0;
  while (running_.load(std::memory_order_acquire)) {
    int timeout_ms = 200;
    if (wheel_tick_ms_ > 0) {
      timeout_ms = static_cast<int>(
          std::clamp<int64_t>(wheel_tick_ms_, 1, timeout_ms));
    }
    const int n = ::epoll_wait(epoll_fd_, events, kMaxEvents, timeout_ms);
    const uint64_t loop_start_ns = trace::NowNanos();
    // Loop-lag gauge: the gap between consecutive wakeups bounds how long
    // an already-posted completion sat before this drain.
    if (last_wake_ns != 0) {
      metrics_.reactor_loop_lag_ns.store(loop_start_ns - last_wake_ns,
                                         std::memory_order_relaxed);
    }
    last_wake_ns = loop_start_ns;
    if (n < 0 && errno != EINTR) break;
    for (int i = 0; i < n; ++i) {
      const uint64_t tag = events[i].data.u64;
      if (tag == kListenTag) {
        HandleAccept();
        continue;
      }
      if (tag == kWakeTag) {
        uint64_t drained;
        while (::read(wake_fd_, &drained, sizeof(drained)) > 0) {
        }
        continue;
      }
      // epoll coalesces all readiness for one fd into one event, so each
      // Connection appears at most once per wait — a close inside one
      // handler cannot dangle another event in this batch.
      auto* conn = reinterpret_cast<Connection*>(tag);
      const uint64_t id = conn->id;
      if ((events[i].events & (EPOLLIN | EPOLLRDHUP)) != 0) {
        HandleReadable(conn);
      }
      auto it = connections_.find(id);
      if (it == connections_.end()) continue;
      if ((events[i].events & EPOLLOUT) != 0) HandleWritable(it->second.get());
      it = connections_.find(id);
      if (it == connections_.end()) continue;
      if ((events[i].events & (EPOLLERR | EPOLLHUP)) != 0) {
        CloseConnection(it->second.get());
      }
    }
    DrainCompletions();
    AdvanceIdleWheel();
    if (n > 0) metrics_.RecordReactorLoop(trace::NowNanos() - loop_start_ns);
  }
  // Shutdown: tear down every state machine on the owning thread.
  while (!connections_.empty()) {
    CloseConnection(connections_.begin()->second.get());
  }
}

void SkylineServer::HandleAccept() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_CLOEXEC | SOCK_NONBLOCK);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or a transient accept error: wait for the next event
    }
    if (connections_.size() >=
        static_cast<size_t>(options_.max_connections)) {
      metrics_.connections_rejected.fetch_add(1, std::memory_order_relaxed);
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    metrics_.connections_opened.fetch_add(1, std::memory_order_relaxed);
    metrics_.connections_open.fetch_add(1, std::memory_order_relaxed);

    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    conn->id = next_conn_id_++;
    conn->last_active_ns = trace::NowNanos();
    Connection* raw = conn.get();
    connections_.emplace(raw->id, std::move(conn));
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLRDHUP;
    ev.data.u64 = reinterpret_cast<uint64_t>(raw);
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
      CloseConnection(raw);
      continue;
    }
    TouchIdleWheel(raw);
  }
}

void SkylineServer::HandleReadable(Connection* conn) {
  char chunk[64 * 1024];
  const ssize_t n = ::read(conn->fd, chunk, sizeof(chunk));
  if (n < 0) {
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) return;
    CloseConnection(conn);
    return;
  }
  if (n == 0) {
    // Peer half-closed. Anything already buffered (complete lines or an
    // in-flight batch) still gets answered and flushed; only then close.
    if (!conn->peer_half_closed) {
      conn->peer_half_closed = true;
      SetReading(conn, false);
      if (conn->in_flight || conn->out_off < conn->outbuf.size() ||
          conn->inbuf.find('\n') != std::string::npos) {
        metrics_.half_closed_drains.fetch_add(1, std::memory_order_relaxed);
      }
      ProcessInput(conn);
      auto it = connections_.find(conn->id);
      if (it == connections_.end()) return;
      conn = it->second.get();
      if (!conn->in_flight && conn->out_off >= conn->outbuf.size()) {
        CloseConnection(conn);
      }
    }
    return;
  }
  conn->inbuf.append(chunk, static_cast<size_t>(n));
  conn->last_active_ns = trace::NowNanos();
  metrics_.bytes_received.fetch_add(static_cast<uint64_t>(n),
                                    std::memory_order_relaxed);
  TouchIdleWheel(conn);
  ProcessInput(conn);
}

void SkylineServer::ProcessInput(Connection* conn) {
  if (conn->closing) return;
  if (!conn->http && conn->inbuf.size() >= 4 &&
      conn->inbuf.compare(0, 4, "GET ") == 0) {
    conn->http = true;
  }
  if (conn->http) {
    if (conn->in_flight) return;
    const size_t header_end = conn->inbuf.find("\r\n\r\n");
    if (header_end == std::string::npos) {
      if (conn->inbuf.size() > options_.max_request_bytes) {
        CloseConnection(conn);
      }
      return;
    }
    const size_t target_end = conn->inbuf.find(' ', 4);
    Job job;
    job.conn_id = conn->id;
    job.http = true;
    job.ctx = trace::NextServerRequestToken();
    if (target_end != std::string::npos) {
      job.http_target = conn->inbuf.substr(4, target_end - 4);
    }
    conn->inbuf.clear();
    if (job.http_target == "/debug/connections") {
      // Connection state machines are owned by this thread; rendering them
      // anywhere else would race. The payload is a few hundred bytes per
      // connection — cheap enough to build inline.
      AppendHttpResponse("HTTP/1.1 200 OK", "application/json",
                         RenderConnectionsJson(), &conn->outbuf);
      conn->closing = true;
      SetReading(conn, false);
      FlushOutput(conn);
      return;
    }
    DispatchJob(conn, std::move(job));
    return;
  }
  if (!conn->in_flight) {
    // Take every complete line as one pipelined batch; the trailing partial
    // line stays buffered for the next read. Small pure-query batches run
    // inline on this thread (no handoff, no epoll re-arm); anything that
    // could block the loop goes to the pool.
    const size_t last_nl = conn->inbuf.rfind('\n');
    if (last_nl != std::string::npos) {
      std::string batch = conn->inbuf.substr(0, last_nl + 1);
      conn->inbuf.erase(0, last_nl + 1);
      // Establish the batch's request context here so the dispatch span on
      // this thread and everything downstream (worker, query shards) share
      // one rid.
      const uint64_t ctx = BatchRequestContext(batch);
      trace::ScopedRequestContext ctx_scope(ctx);
      SKYDIA_TRACE_SPAN("serve.dispatch");
      if (CanExecuteInline(batch)) {
        if (!ExecuteInline(conn, batch)) return;
      } else {
        Job job;
        job.conn_id = conn->id;
        job.lines = std::move(batch);
        job.ctx = ctx;
        conn->ctx = ctx;
        DispatchJob(conn, std::move(job));
      }
    }
  }
  if (!conn->in_flight && conn->inbuf.size() > options_.max_request_bytes) {
    AppendErrorReply(std::nullopt, ErrorCode::kInvalidArgument,
                     "request line exceeds the size limit", &conn->outbuf,
                     trace::RequestIdForToken(trace::NextServerRequestToken()));
    metrics_.error_replies.fetch_add(1, std::memory_order_relaxed);
    metrics_.oversize_disconnects.fetch_add(1, std::memory_order_relaxed);
    conn->closing = true;
    SetReading(conn, false);
    FlushOutput(conn);
  }
}

bool SkylineServer::CanExecuteInline(const std::string& batch) const {
  if (options_.inline_batch_lines <= 0) return false;
  // Reloads block on disk, range scans can walk a large slab of the grid,
  // and mutations take the pipeline mutex (and, with a zero window, run a
  // publish) — all belong on the pool. The substring test is conservative:
  // every such command literally contains the keyword, and a false match
  // (the keyword inside a malformed line) merely routes a cheap batch to
  // the pool, which is always correct.
  if (batch.find("reload") != std::string::npos ||
      batch.find("range") != std::string::npos ||
      batch.find("insert") != std::string::npos ||
      batch.find("delete") != std::string::npos ||
      batch.find("flush") != std::string::npos) {
    return false;
  }
  return std::count(batch.begin(), batch.end(), '\n') <=
         static_cast<ptrdiff_t>(options_.inline_batch_lines);
}

bool SkylineServer::ExecuteInline(Connection* conn, std::string_view lines) {
  std::vector<std::string_view> split;
  SplitLines(lines, &split);
  ServeBatch(split, &conn->outbuf);
  metrics_.inline_batches.fetch_add(1, std::memory_order_relaxed);
  return FlushOutput(conn);
}

void SkylineServer::DispatchJob(Connection* conn, Job job) {
  conn->in_flight = true;
  // Read backpressure: park the read interest while the batch is at the
  // pool, so replies stay ordered and the input buffer stays bounded.
  SetReading(conn, false);
  TouchIdleWheel(conn);
  metrics_.worker_queue_depth.fetch_add(1, std::memory_order_relaxed);
  {
    MutexLock lock(jobs_mu_);
    jobs_.push_back(std::move(job));
  }
  jobs_cv_.notify_one();
}

void SkylineServer::DrainCompletions() {
  std::deque<Completion> batch;
  completions_signaled_.store(false, std::memory_order_release);
  {
    MutexLock lock(completions_mu_);
    batch.swap(completions_);
  }
  for (Completion& completion : batch) {
    auto it = connections_.find(completion.conn_id);
    if (it == connections_.end()) continue;  // closed while the batch ran
    Connection* conn = it->second.get();
    conn->in_flight = false;
    conn->ctx = 0;
    conn->last_active_ns = trace::NowNanos();
    conn->outbuf.append(completion.reply);
    if (completion.close_after) conn->closing = true;
    TouchIdleWheel(conn);
    if (!FlushOutput(conn)) continue;
    it = connections_.find(completion.conn_id);
    if (it == connections_.end()) continue;
    conn = it->second.get();
    if (conn->closing) continue;
    // Resume reading and serve whatever piled up while the batch ran.
    SetReading(conn, true);
    ProcessInput(conn);
    it = connections_.find(completion.conn_id);
    if (it == connections_.end()) continue;
    conn = it->second.get();
    if (conn->peer_half_closed && !conn->in_flight &&
        conn->out_off >= conn->outbuf.size()) {
      CloseConnection(conn);
    }
  }
}

void SkylineServer::HandleWritable(Connection* conn) {
  if (!FlushOutput(conn)) return;
  auto it = connections_.find(conn->id);
  if (it == connections_.end()) return;
  conn = it->second.get();
  if (conn->peer_half_closed && !conn->in_flight &&
      conn->out_off >= conn->outbuf.size()) {
    CloseConnection(conn);
  }
}

bool SkylineServer::FlushOutput(Connection* conn) {
  while (conn->out_off < conn->outbuf.size()) {
    const ssize_t n =
        ::send(conn->fd, conn->outbuf.data() + conn->out_off,
               conn->outbuf.size() - conn->out_off, MSG_NOSIGNAL);
    if (n > 0) {
      conn->out_off += static_cast<size_t>(n);
      metrics_.bytes_sent.fetch_add(static_cast<uint64_t>(n),
                                    std::memory_order_relaxed);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    CloseConnection(conn);
    return false;
  }
  if (conn->out_off >= conn->outbuf.size()) {
    conn->outbuf.clear();
    conn->out_off = 0;
    if (conn->want_write) {
      conn->want_write = false;
      UpdateEpoll(conn);
    }
    if (conn->closing) {
      CloseConnection(conn);
      return false;
    }
    return true;
  }
  // Partial write: the socket buffer is full. Reclaim the written prefix
  // once it is large enough to matter, enforce the backpressure cap, and
  // wait for EPOLLOUT.
  if (conn->out_off > size_t{64} * 1024) {
    conn->outbuf.erase(0, conn->out_off);
    conn->out_off = 0;
  }
  if (conn->outbuf.size() - conn->out_off > options_.max_response_bytes) {
    metrics_.backpressure_disconnects.fetch_add(1, std::memory_order_relaxed);
    CloseConnection(conn);
    return false;
  }
  if (!conn->want_write) {
    conn->want_write = true;
    UpdateEpoll(conn);
  }
  return true;
}

void SkylineServer::SetReading(Connection* conn, bool reading) {
  // After EOF there is nothing left to read; never re-arm EPOLLIN.
  if (conn->peer_half_closed) reading = false;
  if (conn->reading == reading) return;
  conn->reading = reading;
  UpdateEpoll(conn);
}

void SkylineServer::UpdateEpoll(Connection* conn) {
  epoll_event ev{};
  // A half-closed peer keeps EPOLLRDHUP asserted forever in level-triggered
  // mode, so both read interests drop together once EOF is seen.
  if (conn->reading && !conn->peer_half_closed) {
    ev.events |= EPOLLIN | EPOLLRDHUP;
  }
  if (conn->want_write) ev.events |= EPOLLOUT;
  ev.data.u64 = reinterpret_cast<uint64_t>(conn);
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
}

void SkylineServer::TouchIdleWheel(Connection* conn) {
  if (wheel_tick_ms_ <= 0) return;
  const int64_t tick =
      static_cast<int64_t>(trace::NowNanos() / 1'000'000) / wheel_tick_ms_;
  const int slot = static_cast<int>(
      (tick + static_cast<int64_t>(kWheelSlots) - 1) %
      static_cast<int64_t>(kWheelSlots));
  if (conn->wheel_slot == slot) return;
  conn->wheel_slot = slot;
  // Entries in the old bucket go stale and are skipped at expiry; no
  // eager removal needed.
  wheel_[static_cast<size_t>(slot)].push_back(conn->id);
}

void SkylineServer::AdvanceIdleWheel() {
  if (wheel_tick_ms_ <= 0) return;
  const int64_t tick =
      static_cast<int64_t>(trace::NowNanos() / 1'000'000) / wheel_tick_ms_;
  if (tick <= wheel_last_tick_) return;
  // Cap catch-up at one revolution: after a long stall, sweeping further
  // would re-visit buckets that now hold freshly-touched connections.
  const int64_t steps = std::min<int64_t>(tick - wheel_last_tick_,
                                          static_cast<int64_t>(kWheelSlots));
  for (int64_t i = 1; i <= steps; ++i) {
    const size_t slot = static_cast<size_t>(
        (wheel_last_tick_ + i) % static_cast<int64_t>(kWheelSlots));
    std::vector<uint64_t> expired;
    expired.swap(wheel_[slot]);
    for (const uint64_t id : expired) {
      auto it = connections_.find(id);
      if (it == connections_.end()) continue;          // closed already
      Connection* conn = it->second.get();
      if (conn->wheel_slot != static_cast<int>(slot)) continue;  // touched
      if (conn->in_flight || conn->out_off < conn->outbuf.size()) {
        // Mid-batch or mid-flush is not idle; re-enroll for another round.
        conn->wheel_slot = -1;
        TouchIdleWheel(conn);
        continue;
      }
      CloseConnection(conn, /*idle=*/true);
    }
  }
  wheel_last_tick_ = tick;
}

void SkylineServer::CloseConnection(Connection* conn, bool idle) {
  if (idle) {
    metrics_.idle_disconnects.fetch_add(1, std::memory_order_relaxed);
  }
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  // Guarded: the event loop owns the state machine, so this runs exactly
  // once per connection; the guard is belt-and-braces against future bugs.
  GuardedDecrement(&metrics_.connections_open);
  connections_.erase(conn->id);  // destroys conn
}

// ---------------------------------------------------------------------------
// Worker pool.

void SkylineServer::WorkerLoop() {
  for (;;) {
    Job job;
    {
      // Explicit wait loop (not the predicate overload) so the guarded reads
      // happen where -Wthread-safety can see the MutexLock.
      MutexLock lock(jobs_mu_);
      while (!workers_stop_ && jobs_.empty()) jobs_cv_.wait(lock.native());
      if (jobs_.empty()) return;  // stop requested and queue drained
      job = std::move(jobs_.front());
      jobs_.pop_front();
    }
    Completion completion;
    completion.conn_id = job.conn_id;
    // Re-establish the batch's request context on this thread: spans below
    // (and the shard spans fanned out from them) carry the reactor's rid.
    trace::ScopedRequestContext ctx_scope(job.ctx);
    if (job.http) {
      ServeHttp(job.http_target, &completion.reply);
      completion.close_after = true;
    } else {
      std::vector<std::string_view> lines;
      SplitLines(job.lines, &lines);
      ServeBatch(lines, &completion.reply);
    }
    metrics_.worker_batches.fetch_add(1, std::memory_order_relaxed);
    {
      MutexLock lock(completions_mu_);
      completions_.push_back(std::move(completion));
    }
    GuardedDecrement(&metrics_.worker_queue_depth);
    // One wake per reactor drain, not per completion: the loop clears the
    // flag before swapping the queue, so a post-swap push always re-signals.
    if (!completions_signaled_.exchange(true, std::memory_order_acq_rel)) {
      const uint64_t one = 1;
      [[maybe_unused]] const ssize_t n =
          ::write(wake_fd_, &one, sizeof(one));
    }
  }
}

void SkylineServer::ServeHttp(std::string_view request_target,
                              std::string* out) {
  std::string body;
  const char* content_type = "text/plain; version=0.0.4; charset=utf-8";
  const char* status_line = "HTTP/1.1 200 OK";
  if (request_target == "/metrics") {
    body = RenderMetrics();
  } else if (request_target == "/healthz") {
    // Liveness only: the process is up and serving HTTP. Whether it can
    // answer queries is /readyz's question — a restart will not fix "no
    // snapshot yet", so it must not fail liveness.
    body = "ok\n";
    content_type = "text/plain; charset=utf-8";
  } else if (request_target == "/readyz") {
    const auto snapshot = registry_.Current();
    if (snapshot == nullptr) {
      body = "no snapshot\n";
      content_type = "text/plain; charset=utf-8";
      status_line = "HTTP/1.1 503 Service Unavailable";
    } else {
      body.append("{\"generation\":")
          .append(std::to_string(snapshot->generation));
      body.append(",\"shards\":")
          .append(std::to_string(snapshot->serving().num_shards()));
      body.append(",\"points\":")
          .append(std::to_string(snapshot->serving().point_count()));
      body.append(",\"mutation_pending\":")
          .append(std::to_string(
              mutations_ != nullptr ? mutations_->pending() : 0));
      body.append("}\n");
      content_type = "application/json";
    }
  } else if (request_target == "/debug/trace") {
    body = trace::ToChromeTraceJson(trace::CollectRecent());
    content_type = "application/json";
  } else if (request_target == "/debug/snapshot") {
    body = RenderDebugSnapshotJson();
    content_type = "application/json";
  } else {
    body =
        "skydia serve: try /metrics, /healthz, /readyz, /debug/trace, "
        "/debug/snapshot or /debug/connections\n";
    content_type = "text/plain; charset=utf-8";
    status_line = "HTTP/1.1 404 Not Found";
  }
  AppendHttpResponse(status_line, content_type, body, out);
}

std::string SkylineServer::RenderConnectionsJson() const {
  const uint64_t now_ns = trace::NowNanos();
  std::string out;
  out.reserve(128 + connections_.size() * 160);
  out.append("{\"connections\":[");
  bool first = true;
  for (const auto& [id, conn] : connections_) {
    if (!first) out.push_back(',');
    first = false;
    out.append("{\"id\":").append(std::to_string(id));
    out.append(",\"inbuf_bytes\":").append(std::to_string(conn->inbuf.size()));
    out.append(",\"outbuf_bytes\":")
        .append(std::to_string(conn->outbuf.size() - conn->out_off));
    out.append(",\"in_flight\":").append(conn->in_flight ? "true" : "false");
    out.append(",\"http\":").append(conn->http ? "true" : "false");
    out.append(",\"closing\":").append(conn->closing ? "true" : "false");
    out.append(",\"half_closed\":")
        .append(conn->peer_half_closed ? "true" : "false");
    const uint64_t idle_ns =
        now_ns > conn->last_active_ns ? now_ns - conn->last_active_ns : 0;
    out.append(",\"idle_ms\":").append(std::to_string(idle_ns / 1'000'000));
    out.append(",\"rid\":\"");
    JsonEscape(trace::RequestIdForToken(conn->ctx), &out);
    out.append("\"}");
  }
  out.append("],\"open\":").append(std::to_string(connections_.size()));
  out.append("}\n");
  return out;
}

std::string SkylineServer::RenderDebugSnapshotJson() const {
  std::string out;
  out.reserve(512);
  const auto snapshot = registry_.Current();
  out.append("{\"generation\":")
      .append(std::to_string(snapshot != nullptr ? snapshot->generation : 0));
  out.append(",\"shards\":")
      .append(std::to_string(
          snapshot != nullptr ? snapshot->serving().num_shards() : 0));
  out.append(",\"points\":")
      .append(std::to_string(
          snapshot != nullptr ? snapshot->serving().point_count() : 0));
  out.append(",\"recorder_active\":")
      .append(trace::RecorderActive() ? "true" : "false");
  if (mutations_ != nullptr) {
    const MutationDebugState m = mutations_->DebugState();
    out.append(",\"mutation\":{\"pending\":").append(std::to_string(m.pending));
    out.append(",\"pending_cells\":").append(std::to_string(m.pending_cells));
    out.append(",\"shadow_seeded\":").append(m.shadow_seeded ? "true"
                                                             : "false");
    out.append(",\"shadow_age_ms\":").append(std::to_string(m.shadow_age_ms));
    out.append(",\"publish_in_flight\":")
        .append(m.publish_in_flight ? "true" : "false");
    out.append(",\"in_flight_generation\":")
        .append(std::to_string(m.in_flight_generation));
    out.append(",\"pending_rid\":\"");
    JsonEscape(m.pending_rid, &out);
    out.append("\",\"window_ms\":").append(std::to_string(m.window_ms));
    out.append(",\"max_pending\":").append(std::to_string(m.max_pending));
    out.push_back('}');
  }
  // Histogram exemplars: the most recent request to land in each populated
  // duration bucket, linking /metrics tail buckets to concrete rids.
  out.append(",\"request_duration_exemplars\":[");
  bool first = true;
  for (size_t b = 0; b < ServerMetrics::kDurationBuckets; ++b) {
    const uint64_t token =
        metrics_.request_exemplar_token[b].load(std::memory_order_relaxed);
    if (token == 0) continue;
    if (!first) out.push_back(',');
    first = false;
    out.append("{\"le_ns\":").append(std::to_string(uint64_t{1} << (b + 1)));
    out.append(",\"rid\":\"");
    JsonEscape(trace::RequestIdForToken(token), &out);
    out.append("\",\"duration_ns\":")
        .append(std::to_string(
            metrics_.request_exemplar_ns[b].load(std::memory_order_relaxed)));
    out.push_back('}');
  }
  out.append("]}\n");
  return out;
}

void SkylineServer::ServeBatch(std::span<const std::string_view> lines,
                               std::string* out) {
  // The reactor/worker normally established the batch's request context
  // already; direct embedder calls get a fresh server token so every reply
  // still carries a rid and every span an id.
  uint64_t ctx = trace::CurrentRequestContext();
  if (ctx == 0) ctx = trace::NextServerRequestToken();
  trace::ScopedRequestContext ctx_scope(ctx);
  const std::string batch_rid = trace::RequestIdForToken(ctx);
  SKYDIA_TRACE_SPAN("serve.batch");
  const uint64_t batch_start_ns = trace::NowNanos();
  // One snapshot pin for the whole pipelined batch: every reply in a batch
  // carries the same generation even across a concurrent reload — and with
  // sharding, one consistent set of stripes.
  const auto snapshot = registry_.Current();

  struct Pending {
    Request request;
    std::string parse_error;  // non-empty = reply with this error
  };
  std::vector<Pending> pending;
  pending.reserve(lines.size());

  // Pass 1: parse everything and run the batched SetId fast path over the
  // plain diagram queries (the dominant traffic).
  std::vector<Point2D> fast_queries;
  std::vector<size_t> fast_index;
  {
    SKYDIA_TRACE_SPAN("serve.parse");
    for (size_t i = 0; i < lines.size(); ++i) {
      metrics_.requests_total.fetch_add(1, std::memory_order_relaxed);
      Pending p;
      auto parsed = ParseRequest(lines[i]);
      if (!parsed.ok()) {
        p.parse_error = parsed.status().message();
        metrics_.malformed_requests.fetch_add(1, std::memory_order_relaxed);
      } else {
        p.request = *std::move(parsed);
        if (p.request.kind == RequestKind::kQuery) {
          const QueryPayload& query = p.request.query();
          if (!query.exact && !query.semantics.has_value()) {
            fast_queries.push_back(query.q);
            fast_index.push_back(i);
          }
        }
      }
      pending.push_back(std::move(p));
    }
  }

  std::vector<SetId> fast_sets;
  if (!fast_queries.empty() && snapshot != nullptr) {
    SKYDIA_TRACE_SPAN("serve.answer");
    // One Servable surface whatever the snapshot's shape: the sharded view
    // scatters/gathers across its row stripes, the single-index diagram
    // follows its engine's own threading policy.
    snapshot->serving().AnswerSets(fast_queries, &fast_sets,
                                   shard_pool_.get());
  }
  std::vector<SetId> set_for_line(lines.size(), 0);
  std::vector<bool> has_set(lines.size(), false);
  for (size_t j = 0; j < fast_index.size(); ++j) {
    set_for_line[fast_index[j]] = fast_sets[j];
    has_set[fast_index[j]] = true;
  }

  // Pass 2: render replies in request order.
  SKYDIA_TRACE_SPAN("serve.render");
  const int64_t slow_ns = options_.slow_query_ms > 0
                              ? int64_t{options_.slow_query_ms} * 1'000'000
                              : -1;
  const uint64_t generation = snapshot != nullptr ? snapshot->generation : 0;
  std::string cached;
  // Reply rid: the line's own "rid" when the client sent one, else the
  // batch's server-generated id — suffixed with the line index so every
  // reply of a pipelined batch is still individually addressable.
  const auto line_rid = [&](const Request& req, size_t i) -> std::string {
    if (!req.rid.empty()) return req.rid;
    if (lines.size() == 1) return batch_rid;
    return batch_rid + "." + std::to_string(i);
  };
  for (size_t i = 0; i < lines.size(); ++i) {
    Pending& p = pending[i];
    const std::string rid = line_rid(p.request, i);
    if (!p.parse_error.empty()) {
      AppendErrorReply(p.request.id, ErrorCode::kParseError, p.parse_error,
                       out, rid);
      metrics_.error_replies.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    const Request& req = p.request;
    switch (req.kind) {
      case RequestKind::kPing:
        AppendOkReply(req.id, generation, out, rid);
        break;
      case RequestKind::kStats: {
        std::string body = RenderStatsJson(snapshot.get());
        AppendQueryReply(req.id, generation, "stats", body, out, rid);
        break;
      }
      case RequestKind::kReload: {
        auto status = Reload(req.reload().path);
        if (status.ok()) {
          AppendOkReply(req.id, registry_.generation(), out, rid);
        } else {
          AppendErrorReply(req.id, ErrorCode::kInvalidArgument,
                           status.message(), out, rid);
          metrics_.error_replies.fetch_add(1, std::memory_order_relaxed);
        }
        break;
      }
      case RequestKind::kInsert: {
        if (mutations_ == nullptr) {
          AppendErrorReply(req.id, ErrorCode::kInvalidArgument,
                           "mutations are not enabled", out, rid);
          metrics_.error_replies.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        auto ack = mutations_->Insert(req.insert().p, req.insert().label);
        if (!ack.ok()) {
          AppendErrorReply(req.id, ErrorCodeForStatus(ack.status()),
                           ack.status().message(), out, rid);
          metrics_.error_replies.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        AppendInsertReply(req.id, ack->generation, ack->point, out, rid);
        break;
      }
      case RequestKind::kDelete: {
        if (mutations_ == nullptr) {
          AppendErrorReply(req.id, ErrorCode::kInvalidArgument,
                           "mutations are not enabled", out, rid);
          metrics_.error_replies.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        auto ack = mutations_->Delete(req.del().point);
        if (!ack.ok()) {
          AppendErrorReply(req.id, ErrorCodeForStatus(ack.status()),
                           ack.status().message(), out, rid);
          metrics_.error_replies.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        AppendOkReply(req.id, ack->generation, out, rid);
        break;
      }
      case RequestKind::kFlush: {
        if (mutations_ == nullptr) {
          AppendErrorReply(req.id, ErrorCode::kInvalidArgument,
                           "mutations are not enabled", out, rid);
          metrics_.error_replies.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        AppendOkReply(req.id, mutations_->Flush(), out, rid);
        break;
      }
      case RequestKind::kRange: {
        if (snapshot == nullptr) {
          AppendErrorReply(req.id, ErrorCode::kInvalidArgument,
                           "no snapshot installed", out, rid);
          metrics_.error_replies.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        const RangePayload& range = req.range();
        auto summary = snapshot->serving().AnswerRange(range.range);
        if (!summary.ok()) {
          AppendErrorReply(req.id, ErrorCode::kInvalidArgument,
                           summary.status().message(), out, rid);
          metrics_.error_replies.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        const Dataset& dataset = snapshot->serving().dataset();
        const std::string union_json =
            range.labels ? RenderLabelsArray(dataset, summary->union_ids)
                         : RenderIdsArray(summary->union_ids);
        const std::string intersection_json =
            range.labels
                ? RenderLabelsArray(dataset, summary->intersection_ids)
                : RenderIdsArray(summary->intersection_ids);
        AppendRangeReply(req.id, generation, union_json, intersection_json,
                         summary->distinct_results, out, rid);
        break;
      }
      case RequestKind::kQuery: {
        if (snapshot == nullptr) {
          AppendErrorReply(req.id, ErrorCode::kInvalidArgument,
                           "no snapshot installed", out, rid);
          metrics_.error_replies.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        const QueryPayload& query = req.query();
        const QueryEngine& engine = snapshot->serving().engine();
        const char* key = query.labels ? "labels" : "ids";
        if (has_set[i]) {
          // Fast path: interned set id -> per-snapshot rendered-reply cache.
          const uint64_t cache_key = CacheKey(set_for_line[i], query.labels);
          if (snapshot->cache->Lookup(cache_key, &cached)) {
            AppendQueryReply(req.id, generation, key, cached, out, rid);
            break;
          }
          const auto ids = engine.Get(set_for_line[i]);
          std::string array =
              query.labels
                  ? RenderLabelsArray(snapshot->serving().dataset(), ids)
                  : RenderIdsArray(ids);
          AppendQueryReply(req.id, generation, key, array, out, rid);
          snapshot->cache->Insert(cache_key, std::move(array));
          break;
        }
        // Slow path: exact and/or semantics-override queries go through the
        // QueryOptions entry point (uncached; oracle answers are per-query).
        QueryOptions query_options;
        query_options.exact = query.exact;
        query_options.semantics = query.semantics;
        const uint64_t query_start_ns = trace::NowNanos();
        auto answer = engine.Answer(query.q, query_options);
        const int64_t query_ns =
            static_cast<int64_t>(trace::NowNanos() - query_start_ns);
        if (slow_ns >= 0 && query_ns >= slow_ns) {
          SKYDIA_LOG(Warning) << "slow_query ms="
                              << static_cast<double>(query_ns) / 1e6
                              << " x=" << query.q.x << " y=" << query.q.y
                              << " exact=" << (query.exact ? 1 : 0)
                              << " generation=" << generation
                              << " rid=" << rid;
        }
        if (!answer.ok()) {
          AppendErrorReply(req.id, ErrorCode::kInvalidArgument,
                           answer.status().message(), out, rid);
          metrics_.error_replies.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        const std::string array =
            query.labels
                ? RenderLabelsArray(snapshot->serving().dataset(), *answer)
                : RenderIdsArray(*answer);
        AppendQueryReply(req.id, generation, key, array, out, rid);
        break;
      }
    }
  }

  const int64_t batch_ns =
      static_cast<int64_t>(trace::NowNanos() - batch_start_ns);
  metrics_.RecordRequestDuration(static_cast<uint64_t>(batch_ns), ctx);
  if (slow_ns >= 0 && batch_ns >= slow_ns) {
    SKYDIA_LOG(Warning) << "slow_batch ms="
                        << static_cast<double>(batch_ns) / 1e6
                        << " lines=" << lines.size()
                        << " generation=" << generation
                        << " rid=" << batch_rid;
  }
}

}  // namespace skydia::serve
