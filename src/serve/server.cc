#include "src/serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

#include "src/common/logging.h"
#include "src/common/trace.h"
#include "src/serve/protocol.h"

namespace skydia::serve {

namespace {

/// Cache key for one rendered reply array: the interned set id tagged with
/// the representation bit (ids vs labels). SetIds are snapshot-local and the
/// cache lives on the snapshot, so this key is collision-free by design.
uint64_t CacheKey(SetId set, bool labels) {
  return (static_cast<uint64_t>(set) << 1) | (labels ? 1u : 0u);
}

/// Sends all of `data`, suppressing SIGPIPE. Returns false on a broken
/// connection.
bool SendAll(int fd, std::string_view data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

/// Renders the {"cmd":"stats"} reply body: one flat JSON object of the
/// engine's and cache's counters for the pinned snapshot.
std::string RenderStatsJson(const ServingSnapshot* snapshot) {
  if (snapshot == nullptr) return "{}";
  const QueryEngineStats engine = snapshot->diagram->engine().Stats();
  const ResultCacheStats cache = snapshot->cache->Stats();
  std::string out;
  out.reserve(256);
  out.push_back('{');
  const auto field = [&out](const char* name, uint64_t value, bool first) {
    if (!first) out.push_back(',');
    out.push_back('"');
    out.append(name);
    out.append("\":");
    out.append(std::to_string(value));
  };
  field("generation", snapshot->generation, /*first=*/true);
  field("points", snapshot->diagram->dataset().size(), false);
  field("queries_served", engine.queries_served, false);
  field("memo_hits", engine.memo_hits, false);
  field("oracle_fallbacks", engine.oracle_fallbacks, false);
  field("p50_latency_ns", static_cast<uint64_t>(engine.p50_latency_ns),
        false);
  field("p99_latency_ns", static_cast<uint64_t>(engine.p99_latency_ns),
        false);
  field("cache_hits", cache.hits, false);
  field("cache_misses", cache.misses, false);
  field("cache_evictions", cache.evictions, false);
  field("cache_entries", cache.entries, false);
  out.push_back('}');
  return out;
}

}  // namespace

SkylineServer::SkylineServer(const ServerOptions& options)
    : options_(options) {}

SkylineServer::~SkylineServer() { Stop(); }

Status SkylineServer::BindAndListen() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("unparseable listen host \"" +
                                   options_.host + "\"");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Status::Internal("bind " + options_.host + ":" +
                            std::to_string(options_.port) + ": " +
                            std::strerror(errno));
  }
  if (::listen(listen_fd_, 128) < 0) {
    return Status::Internal(std::string("listen: ") + std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    return Status::Internal(std::string("getsockname: ") +
                            std::strerror(errno));
  }
  port_ = ntohs(addr.sin_port);
  return Status::OK();
}

Status SkylineServer::Start(const std::string& blob_path) {
  auto loaded =
      ServableDiagram::Load(blob_path, options_.engine, options_.cell_semantics);
  if (!loaded.ok()) return loaded.status();
  return Start(std::move(loaded).value(), blob_path);
}

Status SkylineServer::Start(ServableDiagram diagram, std::string source_path) {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("server already running");
  }
  registry_.Install(std::move(diagram), std::move(source_path),
                    options_.cache);
  auto bound = BindAndListen();
  if (!bound.ok()) {
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
    return bound;
  }
  start_time_ = std::chrono::steady_clock::now();
  running_.store(true, std::memory_order_release);
  acceptor_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void SkylineServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  // Wake the acceptor out of poll/accept, then join it before touching the
  // connection list it also mutates.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  ReapConnections(/*all=*/true);
}

Status SkylineServer::Reload(const std::string& path) {
  auto status = registry_.Reload(path, options_.engine,
                                 options_.cell_semantics, options_.cache);
  if (status.ok()) {
    metrics_.reloads.fetch_add(1, std::memory_order_relaxed);
  } else {
    metrics_.reload_failures.fetch_add(1, std::memory_order_relaxed);
  }
  return status;
}

std::string SkylineServer::RenderMetrics() const {
  const auto snapshot = registry_.Current();
  const double uptime =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_time_)
          .count();
  return RenderPrometheusMetrics(metrics_, snapshot.get(), uptime);
}

void SkylineServer::AcceptLoop() {
  while (running_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, 200);
    ReapConnections(/*all=*/false);
    if (ready <= 0) continue;
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) continue;

    size_t open_count;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      open_count = conns_.size();
    }
    if (open_count >= static_cast<size_t>(options_.max_connections)) {
      metrics_.connections_rejected.fetch_add(1, std::memory_order_relaxed);
      ::close(fd);
      continue;
    }

    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    metrics_.connections_opened.fetch_add(1, std::memory_order_relaxed);
    metrics_.connections_open.fetch_add(1, std::memory_order_relaxed);

    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* raw = conn.get();
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.push_back(std::move(conn));
    }
    // The thread only reads/writes the fd and sets done; the fd is closed by
    // the reaper (or Stop) strictly after joining, so no fd-reuse race.
    raw->thread = std::thread([this, raw] { ConnectionLoop(raw); });
  }
}

void SkylineServer::ReapConnections(bool all) {
  std::list<std::unique_ptr<Connection>> doomed;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto it = conns_.begin(); it != conns_.end();) {
      if (all || (*it)->done.load(std::memory_order_acquire)) {
        doomed.push_back(std::move(*it));
        it = conns_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& conn : doomed) {
    // Wake a blocked poll/recv, join, then close.
    ::shutdown(conn->fd, SHUT_RDWR);
    if (conn->thread.joinable()) conn->thread.join();
    ::close(conn->fd);
    // Guarded: a double-reaped connection must never wrap the gauge.
    GuardedDecrement(&metrics_.connections_open);
  }
}

void SkylineServer::ConnectionLoop(Connection* conn) {
  const int fd = conn->fd;
  std::string buffer;
  std::string reply;
  char chunk[16 * 1024];
  bool http = false;

  while (running_.load(std::memory_order_acquire)) {
    pollfd pfd{fd, POLLIN, 0};
    const int timeout =
        options_.idle_timeout_ms > 0 ? options_.idle_timeout_ms : -1;
    const int ready = ::poll(&pfd, 1, timeout);
    if (ready < 0 && errno == EINTR) continue;
    if (ready == 0) {
      metrics_.idle_disconnects.fetch_add(1, std::memory_order_relaxed);
      break;
    }
    if (ready < 0) break;

    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n == 0) break;
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    buffer.append(chunk, static_cast<size_t>(n));
    metrics_.bytes_received.fetch_add(static_cast<uint64_t>(n),
                                      std::memory_order_relaxed);

    // HTTP detection: a scrape shares the port. Buffer until the header
    // terminator, answer one request, close.
    if (buffer.size() >= 4 && buffer.compare(0, 4, "GET ") == 0) http = true;
    if (http) {
      const size_t header_end = buffer.find("\r\n\r\n");
      if (header_end == std::string::npos) {
        if (buffer.size() > options_.max_request_bytes) break;
        continue;
      }
      const size_t target_end = buffer.find(' ', 4);
      const std::string_view target =
          target_end == std::string::npos
              ? std::string_view()
              : std::string_view(buffer).substr(4, target_end - 4);
      reply.clear();
      ServeHttp(target, &reply);
      if (SendAll(fd, reply)) {
        metrics_.bytes_sent.fetch_add(reply.size(),
                                      std::memory_order_relaxed);
      }
      break;
    }

    // Split the buffered bytes into complete lines; answer them as one
    // pipelined batch against one pinned snapshot.
    std::vector<std::string_view> lines;
    const std::string_view view(buffer);
    size_t start = 0;
    for (size_t nl = view.find('\n', start); nl != std::string_view::npos;
         nl = view.find('\n', start)) {
      std::string_view line = view.substr(start, nl - start);
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      lines.push_back(line);
      start = nl + 1;
    }
    const size_t remainder = buffer.size() - start;
    if (remainder > options_.max_request_bytes) {
      reply.clear();
      AppendErrorReply(std::nullopt, "request line exceeds the size limit",
                       &reply);
      metrics_.error_replies.fetch_add(1, std::memory_order_relaxed);
      metrics_.oversize_disconnects.fetch_add(1, std::memory_order_relaxed);
      if (SendAll(fd, reply)) {
        metrics_.bytes_sent.fetch_add(reply.size(),
                                      std::memory_order_relaxed);
      }
      break;
    }
    if (!lines.empty()) {
      reply.clear();
      ServeBatch(lines, &reply);
      buffer.erase(0, start);
      if (!reply.empty()) {
        if (!SendAll(fd, reply)) break;
        metrics_.bytes_sent.fetch_add(reply.size(),
                                      std::memory_order_relaxed);
      }
    }
  }
  conn->done.store(true, std::memory_order_release);
}

void SkylineServer::ServeHttp(std::string_view request_target,
                              std::string* out) {
  std::string body;
  const char* content_type = "text/plain; version=0.0.4; charset=utf-8";
  const char* status_line = "HTTP/1.1 200 OK";
  if (request_target == "/metrics") {
    body = RenderMetrics();
  } else if (request_target == "/healthz") {
    body = registry_.generation() > 0 ? "ok\n" : "no snapshot\n";
    content_type = "text/plain; charset=utf-8";
    if (registry_.generation() == 0) status_line = "HTTP/1.1 503 Service Unavailable";
  } else {
    body = "skydia serve: try /metrics or /healthz\n";
    content_type = "text/plain; charset=utf-8";
    status_line = "HTTP/1.1 404 Not Found";
  }
  out->append(status_line).append("\r\nContent-Type: ").append(content_type);
  out->append("\r\nContent-Length: ")
      .append(std::to_string(body.size()))
      .append("\r\nConnection: close\r\n\r\n")
      .append(body);
}

void SkylineServer::ServeBatch(std::span<const std::string_view> lines,
                               std::string* out) {
  SKYDIA_TRACE_SPAN("serve.batch");
  const uint64_t batch_start_ns = trace::NowNanos();
  // One snapshot pin for the whole pipelined batch: every reply in a batch
  // carries the same generation even across a concurrent reload.
  const auto snapshot = registry_.Current();

  struct Pending {
    Request request;
    std::string parse_error;  // non-empty = reply with this error
  };
  std::vector<Pending> pending;
  pending.reserve(lines.size());

  // Pass 1: parse everything and run the batched SetId fast path over the
  // plain diagram queries (the dominant traffic).
  std::vector<Point2D> fast_queries;
  std::vector<size_t> fast_index;
  {
    SKYDIA_TRACE_SPAN("serve.parse");
    for (size_t i = 0; i < lines.size(); ++i) {
      metrics_.requests_total.fetch_add(1, std::memory_order_relaxed);
      Pending p;
      auto parsed = ParseRequest(lines[i]);
      if (!parsed.ok()) {
        p.parse_error = parsed.status().message();
        metrics_.malformed_requests.fetch_add(1, std::memory_order_relaxed);
      } else {
        p.request = *std::move(parsed);
        if (p.request.kind == RequestKind::kQuery && !p.request.exact &&
            !p.request.semantics.has_value()) {
          fast_queries.push_back(p.request.q);
          fast_index.push_back(i);
        }
      }
      pending.push_back(std::move(p));
    }
  }

  std::vector<SetId> fast_sets;
  if (!fast_queries.empty() && snapshot != nullptr) {
    SKYDIA_TRACE_SPAN("serve.answer");
    snapshot->diagram->engine().AnswerBatch(fast_queries, &fast_sets);
  }
  std::vector<SetId> set_for_line(lines.size(), 0);
  std::vector<bool> has_set(lines.size(), false);
  for (size_t j = 0; j < fast_index.size(); ++j) {
    set_for_line[fast_index[j]] = fast_sets[j];
    has_set[fast_index[j]] = true;
  }

  // Pass 2: render replies in request order.
  SKYDIA_TRACE_SPAN("serve.render");
  const int64_t slow_ns = options_.slow_query_ms > 0
                              ? int64_t{options_.slow_query_ms} * 1'000'000
                              : -1;
  const uint64_t generation = snapshot != nullptr ? snapshot->generation : 0;
  std::string cached;
  for (size_t i = 0; i < lines.size(); ++i) {
    Pending& p = pending[i];
    if (!p.parse_error.empty()) {
      AppendErrorReply(p.request.id, p.parse_error, out);
      metrics_.error_replies.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    const Request& req = p.request;
    switch (req.kind) {
      case RequestKind::kPing:
        AppendOkReply(req.id, generation, out);
        break;
      case RequestKind::kStats: {
        std::string body = RenderStatsJson(snapshot.get());
        AppendQueryReply(req.id, generation, "stats", body, out);
        break;
      }
      case RequestKind::kReload: {
        auto status = Reload(req.path);
        if (status.ok()) {
          AppendOkReply(req.id, registry_.generation(), out);
        } else {
          AppendErrorReply(req.id, status.message(), out);
          metrics_.error_replies.fetch_add(1, std::memory_order_relaxed);
        }
        break;
      }
      case RequestKind::kQuery: {
        if (snapshot == nullptr) {
          AppendErrorReply(req.id, "no snapshot installed", out);
          metrics_.error_replies.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        const QueryEngine& engine = snapshot->diagram->engine();
        const char* key = req.labels ? "labels" : "ids";
        if (has_set[i]) {
          // Fast path: interned set id -> per-snapshot rendered-reply cache.
          const uint64_t cache_key = CacheKey(set_for_line[i], req.labels);
          if (snapshot->cache->Lookup(cache_key, &cached)) {
            AppendQueryReply(req.id, generation, key, cached, out);
            break;
          }
          const auto ids = engine.Get(set_for_line[i]);
          std::string array =
              req.labels ? RenderLabelsArray(snapshot->diagram->dataset(), ids)
                         : RenderIdsArray(ids);
          AppendQueryReply(req.id, generation, key, array, out);
          snapshot->cache->Insert(cache_key, std::move(array));
          break;
        }
        // Slow path: exact and/or semantics-override queries go through the
        // QueryOptions entry point (uncached; oracle answers are per-query).
        QueryOptions query_options;
        query_options.exact = req.exact;
        query_options.semantics = req.semantics;
        const uint64_t query_start_ns = trace::NowNanos();
        auto answer = engine.Answer(req.q, query_options);
        const int64_t query_ns =
            static_cast<int64_t>(trace::NowNanos() - query_start_ns);
        if (slow_ns >= 0 && query_ns >= slow_ns) {
          SKYDIA_LOG(Warning) << "slow_query ms="
                              << static_cast<double>(query_ns) / 1e6
                              << " x=" << req.q.x << " y=" << req.q.y
                              << " exact=" << (req.exact ? 1 : 0)
                              << " generation=" << generation;
        }
        if (!answer.ok()) {
          AppendErrorReply(req.id, answer.status().message(), out);
          metrics_.error_replies.fetch_add(1, std::memory_order_relaxed);
          break;
        }
        const std::string array =
            req.labels
                ? RenderLabelsArray(snapshot->diagram->dataset(), *answer)
                : RenderIdsArray(*answer);
        AppendQueryReply(req.id, generation, key, array, out);
        break;
      }
    }
  }

  const int64_t batch_ns =
      static_cast<int64_t>(trace::NowNanos() - batch_start_ns);
  if (slow_ns >= 0 && batch_ns >= slow_ns) {
    SKYDIA_LOG(Warning) << "slow_batch ms="
                        << static_cast<double>(batch_ns) / 1e6
                        << " lines=" << lines.size()
                        << " generation=" << generation;
  }
}

}  // namespace skydia::serve
