#include "src/serve/protocol.h"

#include <limits>

namespace skydia::serve {

namespace {

/// Strict single-pass scanner over one request line. The protocol's JSON
/// subset keeps this tiny: objects of string keys, integer/bool/string
/// values, plus the one [X,Y] coordinate array.
class Cursor {
 public:
  explicit Cursor(std::string_view s) : s_(s) {}

  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Eat(char c) {
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool AtEnd() {
    SkipWs();
    return pos_ == s_.size();
  }

  Status Error(const std::string& message) const {
    return Status::InvalidArgument(message + " at byte " +
                                   std::to_string(pos_));
  }

  StatusOr<std::string> ParseString() {
    if (!Eat('"')) return Error("expected string");
    std::string out;
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) break;
      const char esc = s_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out.push_back(esc);
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u':
          return Error("\\u escapes are not supported");
        default:
          return Error("unknown escape");
      }
    }
    return Error("unterminated string");
  }

  StatusOr<int64_t> ParseInt() {
    SkipWs();
    const bool negative = pos_ < s_.size() && s_[pos_] == '-';
    if (negative) ++pos_;
    if (pos_ >= s_.size() || s_[pos_] < '0' || s_[pos_] > '9') {
      return Error("expected integer");
    }
    uint64_t magnitude = 0;
    while (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9') {
      const uint64_t digit = static_cast<uint64_t>(s_[pos_] - '0');
      if (magnitude > (std::numeric_limits<uint64_t>::max() - digit) / 10) {
        return Error("integer out of range");
      }
      magnitude = magnitude * 10 + digit;
      ++pos_;
    }
    if (pos_ < s_.size() && (s_[pos_] == '.' || s_[pos_] == 'e' ||
                             s_[pos_] == 'E')) {
      return Error("coordinates and ids must be integers");
    }
    const uint64_t limit =
        static_cast<uint64_t>(std::numeric_limits<int64_t>::max()) +
        (negative ? 1 : 0);
    if (magnitude > limit) return Error("integer out of range");
    // Negate in the unsigned domain: -INT64_MIN is UB in signed arithmetic,
    // but 0 - magnitude is well-defined modular wrap, and the narrowing
    // conversion is value-preserving two's complement (C++20).
    if (negative) return static_cast<int64_t>(uint64_t{0} - magnitude);
    return static_cast<int64_t>(magnitude);
  }

  StatusOr<bool> ParseBool() {
    SkipWs();
    if (s_.substr(pos_, 4) == "true") {
      pos_ += 4;
      return true;
    }
    if (s_.substr(pos_, 5) == "false") {
      pos_ += 5;
      return false;
    }
    return Error("expected true or false");
  }

 private:
  std::string_view s_;
  size_t pos_ = 0;
};

void AppendInt(int64_t v, std::string* out) { out->append(std::to_string(v)); }

void AppendIdPrefix(std::optional<int64_t> id, std::string* out) {
  out->push_back('{');
  if (id.has_value()) {
    out->append("\"id\":");
    AppendInt(*id, out);
    out->push_back(',');
  }
}

}  // namespace

StatusOr<Request> ParseRequest(std::string_view line) {
  Cursor cursor(line);
  if (!cursor.Eat('{')) {
    return cursor.Error("request must be a JSON object");
  }
  Request request;
  bool have_q = false;
  bool have_cmd = false;
  bool have_x = false;
  bool have_y = false;
  std::string cmd;
  // Parses a two-element integer array "[lo,hi]" into (*lo, *hi).
  const auto parse_pair = [&cursor](const char* what, int64_t* lo,
                                    int64_t* hi) -> Status {
    const std::string shape = std::string(1, '"') + what + "\" must be " +
                              "[lo,hi]";
    if (!cursor.Eat('[')) return cursor.Error(shape);
    auto first = cursor.ParseInt();
    if (!first.ok()) return first.status();
    if (!cursor.Eat(',')) return cursor.Error(shape);
    auto second = cursor.ParseInt();
    if (!second.ok()) return second.status();
    if (!cursor.Eat(']')) return cursor.Error(shape);
    *lo = *first;
    *hi = *second;
    return Status::OK();
  };
  if (!cursor.Eat('}')) {
    do {
      auto key = cursor.ParseString();
      if (!key.ok()) return key.status();
      if (!cursor.Eat(':')) return cursor.Error("expected ':' after key");
      if (*key == "q") {
        if (!cursor.Eat('[')) return cursor.Error("\"q\" must be [x,y]");
        auto x = cursor.ParseInt();
        if (!x.ok()) return x.status();
        if (!cursor.Eat(',')) return cursor.Error("\"q\" must be [x,y]");
        auto y = cursor.ParseInt();
        if (!y.ok()) return y.status();
        if (!cursor.Eat(']')) return cursor.Error("\"q\" must be [x,y]");
        request.q = Point2D{*x, *y};
        have_q = true;
      } else if (*key == "x") {
        if (Status s =
                parse_pair("x", &request.range.x_lo, &request.range.x_hi);
            !s.ok()) {
          return s;
        }
        have_x = true;
      } else if (*key == "y") {
        if (Status s =
                parse_pair("y", &request.range.y_lo, &request.range.y_hi);
            !s.ok()) {
          return s;
        }
        have_y = true;
      } else if (*key == "exact") {
        auto v = cursor.ParseBool();
        if (!v.ok()) return v.status();
        request.exact = *v;
      } else if (*key == "labels") {
        auto v = cursor.ParseBool();
        if (!v.ok()) return v.status();
        request.labels = *v;
      } else if (*key == "semantics") {
        auto name = cursor.ParseString();
        if (!name.ok()) return name.status();
        auto semantics = ParseSkylineQueryType(*name);
        if (!semantics.ok()) return semantics.status();
        request.semantics = *semantics;
      } else if (*key == "id") {
        auto v = cursor.ParseInt();
        if (!v.ok()) return v.status();
        request.id = *v;
      } else if (*key == "cmd") {
        auto v = cursor.ParseString();
        if (!v.ok()) return v.status();
        cmd = *std::move(v);
        have_cmd = true;
      } else if (*key == "path") {
        auto v = cursor.ParseString();
        if (!v.ok()) return v.status();
        request.path = *std::move(v);
      } else {
        return Status::InvalidArgument("unknown request field \"" + *key +
                                       "\"");
      }
    } while (cursor.Eat(','));
    if (!cursor.Eat('}')) return cursor.Error("expected ',' or '}'");
  }
  if (!cursor.AtEnd()) return cursor.Error("trailing bytes after request");

  if (have_cmd) {
    if (have_q) {
      return Status::InvalidArgument("\"cmd\" and \"q\" are mutually exclusive");
    }
    if (cmd == "range") {
      if (!have_x || !have_y) {
        return Status::InvalidArgument(
            "\"range\" needs \"x\":[lo,hi] and \"y\":[lo,hi]");
      }
      request.kind = RequestKind::kRange;
      return request;
    }
    if (have_x || have_y) {
      return Status::InvalidArgument(
          "\"x\"/\"y\" bounds only apply to {\"cmd\":\"range\"}");
    }
    if (cmd == "ping") {
      request.kind = RequestKind::kPing;
    } else if (cmd == "stats") {
      request.kind = RequestKind::kStats;
    } else if (cmd == "reload") {
      request.kind = RequestKind::kReload;
    } else {
      return Status::InvalidArgument("unknown cmd \"" + cmd +
                                     "\" (ping|stats|reload|range)");
    }
    return request;
  }
  if (have_x || have_y) {
    return Status::InvalidArgument(
        "\"x\"/\"y\" bounds only apply to {\"cmd\":\"range\"}");
  }
  if (!have_q) {
    return Status::InvalidArgument("request needs \"q\" or \"cmd\"");
  }
  request.kind = RequestKind::kQuery;
  return request;
}

void JsonEscape(std::string_view in, std::string* out) {
  static constexpr char kHex[] = "0123456789abcdef";
  for (const char c : in) {
    const auto u = static_cast<unsigned char>(c);
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (u < 0x20) {
      out->append("\\u00");
      out->push_back(kHex[u >> 4]);
      out->push_back(kHex[u & 0xF]);
    } else {
      out->push_back(c);
    }
  }
}

std::string RenderIdsArray(std::span<const PointId> ids) {
  std::string out;
  out.reserve(2 + ids.size() * 6);
  out.push_back('[');
  for (size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) out.push_back(',');
    out.append(std::to_string(ids[i]));
  }
  out.push_back(']');
  return out;
}

std::string RenderLabelsArray(const Dataset& dataset,
                              std::span<const PointId> ids) {
  std::string out;
  out.push_back('[');
  for (size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) out.push_back(',');
    out.push_back('"');
    JsonEscape(dataset.label(ids[i]), &out);
    out.push_back('"');
  }
  out.push_back(']');
  return out;
}

void AppendQueryReply(std::optional<int64_t> id, uint64_t generation,
                      std::string_view key, std::string_view array_json,
                      std::string* out) {
  AppendIdPrefix(id, out);
  out->append("\"gen\":");
  out->append(std::to_string(generation));
  out->append(",\"");
  out->append(key);
  out->append("\":");
  out->append(array_json);
  out->append("}\n");
}

void AppendRangeReply(std::optional<int64_t> id, uint64_t generation,
                      std::string_view union_json,
                      std::string_view intersection_json, uint64_t distinct,
                      std::string* out) {
  AppendIdPrefix(id, out);
  out->append("\"gen\":");
  out->append(std::to_string(generation));
  out->append(",\"union\":");
  out->append(union_json);
  out->append(",\"intersection\":");
  out->append(intersection_json);
  out->append(",\"distinct\":");
  out->append(std::to_string(distinct));
  out->append("}\n");
}

void AppendOkReply(std::optional<int64_t> id, uint64_t generation,
                   std::string* out) {
  AppendIdPrefix(id, out);
  out->append("\"ok\":true,\"gen\":");
  out->append(std::to_string(generation));
  out->append("}\n");
}

void AppendErrorReply(std::optional<int64_t> id, std::string_view message,
                      std::string* out) {
  AppendIdPrefix(id, out);
  out->append("\"error\":\"");
  JsonEscape(message, out);
  out->append("\"}\n");
}

}  // namespace skydia::serve
