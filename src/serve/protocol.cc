#include "src/serve/protocol.h"

#include <limits>
#include <utility>

namespace skydia::serve {

namespace {

/// Strict single-pass scanner over one request line. The protocol's JSON
/// subset keeps this tiny: objects of string keys, integer/bool/string
/// values, plus the one [X,Y] coordinate array.
class Cursor {
 public:
  explicit Cursor(std::string_view s) : s_(s) {}

  void SkipWs() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Eat(char c) {
    SkipWs();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  /// Next non-whitespace byte without consuming it ('\0' at end of input).
  char Peek() {
    SkipWs();
    return pos_ < s_.size() ? s_[pos_] : '\0';
  }

  bool AtEnd() {
    SkipWs();
    return pos_ == s_.size();
  }

  Status Error(const std::string& message) const {
    return Status::InvalidArgument(message + " at byte " +
                                   std::to_string(pos_));
  }

  StatusOr<std::string> ParseString() {
    if (!Eat('"')) return Error("expected string");
    std::string out;
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) break;
      const char esc = s_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out.push_back(esc);
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u':
          return Error("\\u escapes are not supported");
        default:
          return Error("unknown escape");
      }
    }
    return Error("unterminated string");
  }

  StatusOr<int64_t> ParseInt() {
    SkipWs();
    const bool negative = pos_ < s_.size() && s_[pos_] == '-';
    if (negative) ++pos_;
    if (pos_ >= s_.size() || s_[pos_] < '0' || s_[pos_] > '9') {
      return Error("expected integer");
    }
    uint64_t magnitude = 0;
    while (pos_ < s_.size() && s_[pos_] >= '0' && s_[pos_] <= '9') {
      const uint64_t digit = static_cast<uint64_t>(s_[pos_] - '0');
      if (magnitude > (std::numeric_limits<uint64_t>::max() - digit) / 10) {
        return Error("integer out of range");
      }
      magnitude = magnitude * 10 + digit;
      ++pos_;
    }
    if (pos_ < s_.size() && (s_[pos_] == '.' || s_[pos_] == 'e' ||
                             s_[pos_] == 'E')) {
      return Error("coordinates and ids must be integers");
    }
    const uint64_t limit =
        static_cast<uint64_t>(std::numeric_limits<int64_t>::max()) +
        (negative ? 1 : 0);
    if (magnitude > limit) return Error("integer out of range");
    // Negate in the unsigned domain: -INT64_MIN is UB in signed arithmetic,
    // but 0 - magnitude is well-defined modular wrap, and the narrowing
    // conversion is value-preserving two's complement (C++20).
    if (negative) return static_cast<int64_t>(uint64_t{0} - magnitude);
    return static_cast<int64_t>(magnitude);
  }

  StatusOr<bool> ParseBool() {
    SkipWs();
    if (s_.substr(pos_, 4) == "true") {
      pos_ += 4;
      return true;
    }
    if (s_.substr(pos_, 5) == "false") {
      pos_ += 5;
      return false;
    }
    return Error("expected true or false");
  }

 private:
  std::string_view s_;
  size_t pos_ = 0;
};

void AppendInt(int64_t v, std::string* out) { out->append(std::to_string(v)); }

void AppendIdPrefix(std::optional<int64_t> id, std::string* out) {
  out->push_back('{');
  if (id.has_value()) {
    out->append("\"id\":");
    AppendInt(*id, out);
    out->push_back(',');
  }
}

/// Closes a reply line, stamping the rid as the LAST field (wire contract:
/// prefix-matching clients never see it unless they ask).
void AppendRidSuffix(std::string_view rid, std::string* out) {
  if (!rid.empty()) {
    out->append(",\"rid\":\"");
    JsonEscape(rid, out);
    out->push_back('"');
  }
  out->append("}\n");
}

/// The "rid" field contract: bounded (it lands in logs, replies, and the
/// trace-context ring) and printable (no control characters even via
/// escapes, so log lines stay one line).
constexpr size_t kMaxRidBytes = 64;

Status ValidateRid(const std::string& rid) {
  if (rid.empty()) {
    return Status::InvalidArgument("\"rid\" must be a non-empty string");
  }
  if (rid.size() > kMaxRidBytes) {
    return Status::InvalidArgument("\"rid\" exceeds 64 bytes");
  }
  for (const char c : rid) {
    if (static_cast<unsigned char>(c) < 0x20) {
      return Status::InvalidArgument(
          "\"rid\" may not contain control characters");
    }
  }
  return Status::OK();
}

}  // namespace

std::string_view ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kParseError:
      return "parse_error";
    case ErrorCode::kInvalidArgument:
      return "invalid_argument";
    case ErrorCode::kDuplicateCoordinate:
      return "duplicate_coordinate";
    case ErrorCode::kUnknownPoint:
      return "unknown_point";
    case ErrorCode::kOverloaded:
      return "overloaded";
  }
  return "invalid_argument";
}

ErrorCode ErrorCodeForStatus(const Status& status) {
  // Structural mapping only: message text is for humans and must never
  // decide the code a client branches on.
  switch (status.code()) {
    case StatusCode::kNotFound:
      return ErrorCode::kUnknownPoint;  // delete of a nonexistent id
    case StatusCode::kAlreadyExists:
      return ErrorCode::kDuplicateCoordinate;  // distinct-coordinate rule
    case StatusCode::kResourceExhausted:
      return ErrorCode::kOverloaded;  // mutation backlog full; retry later
    default:
      return ErrorCode::kInvalidArgument;
  }
}

StatusOr<Request> ParseRequest(std::string_view line) {
  Cursor cursor(line);
  if (!cursor.Eat('{')) {
    return cursor.Error("request must be a JSON object");
  }
  // Field pass: accumulate every recognized key into flat locals
  // (last-wins on duplicates), then validate the combination and build the
  // kind-specific payload below.
  Request request;
  bool have_q = false;
  bool have_cmd = false;
  bool have_x_pair = false;
  bool have_y_pair = false;
  bool have_x_scalar = false;
  bool have_y_scalar = false;
  bool have_point = false;
  bool exact = false;
  bool labels = false;
  Point2D q{0, 0};
  QueryRange range;
  int64_t x_scalar = 0;
  int64_t y_scalar = 0;
  int64_t point = 0;
  std::optional<SkylineQueryType> semantics;
  std::optional<std::string> label;
  std::string path;
  std::string cmd;
  // Parses a two-element integer array "[lo,hi]" into (*lo, *hi).
  const auto parse_pair = [&cursor](const char* what, int64_t* lo,
                                    int64_t* hi) -> Status {
    const std::string shape = std::string(1, '"') + what + "\" must be " +
                              "[lo,hi]";
    if (!cursor.Eat('[')) return cursor.Error(shape);
    auto first = cursor.ParseInt();
    if (!first.ok()) return first.status();
    if (!cursor.Eat(',')) return cursor.Error(shape);
    auto second = cursor.ParseInt();
    if (!second.ok()) return second.status();
    if (!cursor.Eat(']')) return cursor.Error(shape);
    *lo = *first;
    *hi = *second;
    return Status::OK();
  };
  // Parses "x"/"y", which is shape-overloaded: [lo,hi] range bounds or a
  // scalar insert coordinate, told apart by the leading '['.
  const auto parse_axis = [&](const char* what, int64_t* lo, int64_t* hi,
                              int64_t* scalar, bool* is_pair,
                              bool* is_scalar) -> Status {
    if (cursor.Peek() == '[') {
      if (Status s = parse_pair(what, lo, hi); !s.ok()) return s;
      *is_pair = true;
      *is_scalar = false;
      return Status::OK();
    }
    auto v = cursor.ParseInt();
    if (!v.ok()) return v.status();
    *scalar = *v;
    *is_scalar = true;
    *is_pair = false;
    return Status::OK();
  };
  if (!cursor.Eat('}')) {
    do {
      auto key = cursor.ParseString();
      if (!key.ok()) return key.status();
      if (!cursor.Eat(':')) return cursor.Error("expected ':' after key");
      if (*key == "q") {
        if (!cursor.Eat('[')) return cursor.Error("\"q\" must be [x,y]");
        auto x = cursor.ParseInt();
        if (!x.ok()) return x.status();
        if (!cursor.Eat(',')) return cursor.Error("\"q\" must be [x,y]");
        auto y = cursor.ParseInt();
        if (!y.ok()) return y.status();
        if (!cursor.Eat(']')) return cursor.Error("\"q\" must be [x,y]");
        q = Point2D{*x, *y};
        have_q = true;
      } else if (*key == "x") {
        if (Status s = parse_axis("x", &range.x_lo, &range.x_hi, &x_scalar,
                                  &have_x_pair, &have_x_scalar);
            !s.ok()) {
          return s;
        }
      } else if (*key == "y") {
        if (Status s = parse_axis("y", &range.y_lo, &range.y_hi, &y_scalar,
                                  &have_y_pair, &have_y_scalar);
            !s.ok()) {
          return s;
        }
      } else if (*key == "exact") {
        auto v = cursor.ParseBool();
        if (!v.ok()) return v.status();
        exact = *v;
      } else if (*key == "labels") {
        auto v = cursor.ParseBool();
        if (!v.ok()) return v.status();
        labels = *v;
      } else if (*key == "semantics") {
        auto name = cursor.ParseString();
        if (!name.ok()) return name.status();
        auto parsed = ParseSkylineQueryType(*name);
        if (!parsed.ok()) return parsed.status();
        semantics = *parsed;
      } else if (*key == "id") {
        auto v = cursor.ParseInt();
        if (!v.ok()) return v.status();
        request.id = *v;
      } else if (*key == "rid") {
        auto v = cursor.ParseString();
        if (!v.ok()) return v.status();
        if (Status valid = ValidateRid(*v); !valid.ok()) return valid;
        request.rid = *std::move(v);
      } else if (*key == "cmd") {
        auto v = cursor.ParseString();
        if (!v.ok()) return v.status();
        cmd = *std::move(v);
        have_cmd = true;
      } else if (*key == "path") {
        auto v = cursor.ParseString();
        if (!v.ok()) return v.status();
        path = *std::move(v);
      } else if (*key == "label") {
        auto v = cursor.ParseString();
        if (!v.ok()) return v.status();
        label = *std::move(v);
      } else if (*key == "point") {
        auto v = cursor.ParseInt();
        if (!v.ok()) return v.status();
        point = *v;
        have_point = true;
      } else {
        return Status::InvalidArgument("unknown request field \"" + *key +
                                       "\"");
      }
    } while (cursor.Eat(','));
    if (!cursor.Eat('}')) return cursor.Error("expected ',' or '}'");
  }
  if (!cursor.AtEnd()) return cursor.Error("trailing bytes after request");

  if (have_cmd) {
    if (have_q) {
      return Status::InvalidArgument("\"cmd\" and \"q\" are mutually exclusive");
    }
    if (label.has_value() && cmd != "insert") {
      return Status::InvalidArgument(
          "\"label\" only applies to {\"cmd\":\"insert\"}");
    }
    if (have_point && cmd != "delete") {
      return Status::InvalidArgument(
          "\"point\" only applies to {\"cmd\":\"delete\"}");
    }
    if (cmd == "range") {
      if (!have_x_pair || !have_y_pair) {
        return Status::InvalidArgument(
            "\"range\" needs \"x\":[lo,hi] and \"y\":[lo,hi]");
      }
      request.kind = RequestKind::kRange;
      request.payload = RangePayload{range, labels};
      return request;
    }
    if (cmd == "insert") {
      if (have_x_pair || have_y_pair || !have_x_scalar || !have_y_scalar) {
        return Status::InvalidArgument(
            "\"insert\" needs scalar \"x\":X and \"y\":Y");
      }
      request.kind = RequestKind::kInsert;
      request.payload =
          InsertPayload{Point2D{x_scalar, y_scalar}, std::move(label)};
      return request;
    }
    if (have_x_pair || have_y_pair) {
      return Status::InvalidArgument(
          "\"x\"/\"y\" bounds only apply to {\"cmd\":\"range\"}");
    }
    if (have_x_scalar || have_y_scalar) {
      return Status::InvalidArgument(
          "scalar \"x\"/\"y\" only apply to {\"cmd\":\"insert\"}");
    }
    if (cmd == "delete") {
      if (!have_point) {
        return Status::InvalidArgument("\"delete\" needs \"point\":N");
      }
      request.kind = RequestKind::kDelete;
      request.payload = DeletePayload{point};
      return request;
    }
    if (cmd == "flush") {
      request.kind = RequestKind::kFlush;
      request.payload = FlushPayload{};
    } else if (cmd == "ping") {
      request.kind = RequestKind::kPing;
      request.payload = PingPayload{};
    } else if (cmd == "stats") {
      request.kind = RequestKind::kStats;
      request.payload = StatsPayload{};
    } else if (cmd == "reload") {
      request.kind = RequestKind::kReload;
      request.payload = ReloadPayload{std::move(path)};
    } else {
      return Status::InvalidArgument(
          "unknown cmd \"" + cmd +
          "\" (ping|stats|reload|range|insert|delete|flush)");
    }
    return request;
  }
  if (have_x_pair || have_y_pair || have_x_scalar || have_y_scalar) {
    return Status::InvalidArgument(
        "\"x\"/\"y\" bounds only apply to {\"cmd\":\"range\"}");
  }
  if (label.has_value()) {
    return Status::InvalidArgument(
        "\"label\" only applies to {\"cmd\":\"insert\"}");
  }
  if (have_point) {
    return Status::InvalidArgument(
        "\"point\" only applies to {\"cmd\":\"delete\"}");
  }
  if (!have_q) {
    return Status::InvalidArgument("request needs \"q\" or \"cmd\"");
  }
  request.kind = RequestKind::kQuery;
  request.payload = QueryPayload{q, exact, labels, semantics};
  return request;
}

void JsonEscape(std::string_view in, std::string* out) {
  static constexpr char kHex[] = "0123456789abcdef";
  for (const char c : in) {
    const auto u = static_cast<unsigned char>(c);
    if (c == '"' || c == '\\') {
      out->push_back('\\');
      out->push_back(c);
    } else if (u < 0x20) {
      out->append("\\u00");
      out->push_back(kHex[u >> 4]);
      out->push_back(kHex[u & 0xF]);
    } else {
      out->push_back(c);
    }
  }
}

std::string RenderIdsArray(std::span<const PointId> ids) {
  std::string out;
  out.reserve(2 + ids.size() * 6);
  out.push_back('[');
  for (size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) out.push_back(',');
    out.append(std::to_string(ids[i]));
  }
  out.push_back(']');
  return out;
}

std::string RenderLabelsArray(const Dataset& dataset,
                              std::span<const PointId> ids) {
  std::string out;
  out.push_back('[');
  for (size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) out.push_back(',');
    out.push_back('"');
    JsonEscape(dataset.label(ids[i]), &out);
    out.push_back('"');
  }
  out.push_back(']');
  return out;
}

void AppendQueryReply(std::optional<int64_t> id, uint64_t generation,
                      std::string_view key, std::string_view array_json,
                      std::string* out, std::string_view rid) {
  AppendIdPrefix(id, out);
  out->append("\"gen\":");
  out->append(std::to_string(generation));
  out->append(",\"");
  out->append(key);
  out->append("\":");
  out->append(array_json);
  AppendRidSuffix(rid, out);
}

void AppendRangeReply(std::optional<int64_t> id, uint64_t generation,
                      std::string_view union_json,
                      std::string_view intersection_json, uint64_t distinct,
                      std::string* out, std::string_view rid) {
  AppendIdPrefix(id, out);
  out->append("\"gen\":");
  out->append(std::to_string(generation));
  out->append(",\"union\":");
  out->append(union_json);
  out->append(",\"intersection\":");
  out->append(intersection_json);
  out->append(",\"distinct\":");
  out->append(std::to_string(distinct));
  AppendRidSuffix(rid, out);
}

void AppendOkReply(std::optional<int64_t> id, uint64_t generation,
                   std::string* out, std::string_view rid) {
  AppendIdPrefix(id, out);
  out->append("\"ok\":true,\"gen\":");
  out->append(std::to_string(generation));
  AppendRidSuffix(rid, out);
}

void AppendInsertReply(std::optional<int64_t> id, uint64_t generation,
                       PointId point, std::string* out,
                       std::string_view rid) {
  AppendIdPrefix(id, out);
  out->append("\"ok\":true,\"gen\":");
  out->append(std::to_string(generation));
  out->append(",\"point\":");
  out->append(std::to_string(point));
  AppendRidSuffix(rid, out);
}

void AppendErrorReply(std::optional<int64_t> id, ErrorCode code,
                      std::string_view message, std::string* out,
                      std::string_view rid) {
  AppendIdPrefix(id, out);
  out->append("\"error\":\"");
  JsonEscape(message, out);
  out->append("\",\"code\":\"");
  out->append(ErrorCodeName(code));
  out->push_back('"');
  AppendRidSuffix(rid, out);
}

}  // namespace skydia::serve
