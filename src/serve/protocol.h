// Wire protocol of `skydia serve`: line-delimited JSON over TCP.
//
// Every request is one JSON object on one line, every reply is one JSON
// object on one line, in request order (pipelining is just "send many lines,
// read as many lines"). Grammar (no nesting beyond the coordinate pair; all
// numbers are integers):
//
//   query   := {"q":[X,Y]}                 point-location skyline query
//              optional fields:
//                "exact":true              boundary-exact answer (oracle
//                                          fallback on grid/bisector lines)
//                "labels":true             reply with dataset labels instead
//                                          of point ids
//                "semantics":"quadrant"|"global"|"dynamic"
//                                          assert/override the semantics; a
//                                          mismatch with the snapshot is an
//                                          error unless "exact" is set
//                "id":N                    opaque correlation id, echoed back
//   range   := {"cmd":"range","x":[LO,HI],"y":[LO,HI]}
//                                          skyline over every position in
//                                          the closed rectangle; optional
//                                          "labels" and "id" as for queries
//   admin   := {"cmd":"ping"}             liveness check
//            | {"cmd":"stats"}            serving counters as JSON
//            | {"cmd":"reload"[,"path":"..."]}
//                                          hot-swap the snapshot (omitted
//                                          path reloads the current file)
//
//   reply   := {"id":N,"gen":G,"ids":[...]}      (or "labels":[...])
//            | {"id":N,"gen":G,"union":[...],"intersection":[...],
//               "distinct":D}                    (range replies)
//            | {"id":N,"ok":true,"gen":G}        (admin acks)
//            | {"id":N,"error":"message"}        ("id" present when known)
//
// "gen" is the snapshot generation that answered the query — the hot-swap
// observability handle (tests/serve/hotswap_stress_test.cc asserts on it).
//
// Unknown fields, non-integer numbers, nested structures and \u escapes are
// rejected with a per-line error reply; the connection stays open. Parsing
// never throws and never aborts.
#ifndef SKYDIA_SRC_SERVE_PROTOCOL_H_
#define SKYDIA_SRC_SERVE_PROTOCOL_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "src/common/status.h"
#include "src/core/diagram.h"
#include "src/core/range_query.h"
#include "src/geometry/dataset.h"
#include "src/geometry/point.h"

namespace skydia::serve {

/// What one request line asks for.
enum class RequestKind { kQuery, kRange, kPing, kStats, kReload };

/// One parsed request line.
struct Request {
  RequestKind kind = RequestKind::kQuery;
  Point2D q{0, 0};
  QueryRange range;  ///< for kRange: the [x_lo,x_hi]x[y_lo,y_hi] rectangle
  bool exact = false;
  bool labels = false;
  std::optional<SkylineQueryType> semantics;
  std::optional<int64_t> id;  ///< echoed back verbatim when present
  std::string path;           ///< reload target ("" = current file)
};

/// Parses one request line (without the trailing newline). Returns
/// InvalidArgument with a position-annotated message on malformed input.
StatusOr<Request> ParseRequest(std::string_view line);

/// Appends `in` JSON-escaped (quotes, backslashes, control characters).
void JsonEscape(std::string_view in, std::string* out);

/// Renders a sorted id span as a JSON array: "[1,4,9]".
std::string RenderIdsArray(std::span<const PointId> ids);

/// Renders the labels of `ids` as a JSON array of strings.
std::string RenderLabelsArray(const Dataset& dataset,
                              std::span<const PointId> ids);

/// Appends one query reply line: {"id":N,"gen":G,<key>:<array_json>}\n.
/// `key` is "ids" or "labels"; `array_json` must already be rendered.
void AppendQueryReply(std::optional<int64_t> id, uint64_t generation,
                      std::string_view key, std::string_view array_json,
                      std::string* out);

/// Appends one range reply line:
/// {"id":N,"gen":G,"union":U,"intersection":I,"distinct":D}\n. The two
/// array payloads must already be rendered (ids or labels form).
void AppendRangeReply(std::optional<int64_t> id, uint64_t generation,
                      std::string_view union_json,
                      std::string_view intersection_json, uint64_t distinct,
                      std::string* out);

/// Appends one admin ack line: {"id":N,"ok":true,"gen":G}\n.
void AppendOkReply(std::optional<int64_t> id, uint64_t generation,
                   std::string* out);

/// Appends one error reply line: {"id":N,"error":"..."}\n.
void AppendErrorReply(std::optional<int64_t> id, std::string_view message,
                      std::string* out);

}  // namespace skydia::serve

#endif  // SKYDIA_SRC_SERVE_PROTOCOL_H_
