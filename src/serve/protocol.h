// Wire protocol of `skydia serve`: line-delimited JSON over TCP.
//
// Every request is one JSON object on one line, every reply is one JSON
// object on one line, in request order (pipelining is just "send many lines,
// read as many lines"). Grammar (no nesting beyond the coordinate pair; all
// numbers are integers):
//
//   query   := {"q":[X,Y]}                 point-location skyline query
//              optional fields:
//                "exact":true              boundary-exact answer (oracle
//                                          fallback on grid/bisector lines)
//                "labels":true             reply with dataset labels instead
//                                          of point ids
//                "semantics":"quadrant"|"global"|"dynamic"
//                                          assert/override the semantics; a
//                                          mismatch with the snapshot is an
//                                          error unless "exact" is set
//                "id":N                    opaque correlation id, echoed back
//                "rid":"..."               request id (any request kind):
//                                          stamped on the reply, the slow
//                                          query log and trace spans; the
//                                          server generates one when absent
//   range   := {"cmd":"range","x":[LO,HI],"y":[LO,HI]}
//                                          skyline over every position in
//                                          the closed rectangle; optional
//                                          "labels" and "id" as for queries
//   mutate  := {"cmd":"insert","x":X,"y":Y[,"label":"..."]}
//                                          append one point; the ack carries
//                                          its id as "point"
//            | {"cmd":"delete","point":N}  remove point N (ids above shift
//                                          down by one; labels follow)
//            | {"cmd":"flush"}             publish pending mutations now
//   admin   := {"cmd":"ping"}             liveness check
//            | {"cmd":"stats"}            serving counters as JSON
//            | {"cmd":"reload"[,"path":"..."]}
//                                          hot-swap the snapshot (omitted
//                                          path reloads the current file)
//
//   reply   := {"id":N,"gen":G,"ids":[...]}      (or "labels":[...])
//            | {"id":N,"gen":G,"union":[...],"intersection":[...],
//               "distinct":D}                    (range replies)
//            | {"id":N,"ok":true,"gen":G}        (admin/mutation acks; insert
//                                                 acks add ,"point":P)
//            | {"id":N,"error":"message","code":"..."}
//                                                 ("id" present when known)
//
// Every reply additionally carries a trailing "rid" field — the request id
// echoed back (client-supplied "rid") or server-generated ("s<n>"). Like
// "code" before it, the field is appended LAST so prefix-matching clients of
// the pre-rid protocol keep working.
//
// "gen" is the snapshot generation that answered the query — the hot-swap
// observability handle (tests/serve/hotswap_stress_test.cc asserts on it).
// Mutation acks carry the generation at which the mutation becomes visible:
// mutations apply to a shadow diagram and publish atomically on the
// coalescing window, a flush, or synchronously when the window is 0.
//
// Error replies carry a stable machine-readable "code" (see ErrorCode) so
// clients can branch without string-matching the human message.
//
// Unknown fields, non-integer numbers, nested structures and \u escapes are
// rejected with a per-line error reply; the connection stays open. Parsing
// never throws and never aborts.
#ifndef SKYDIA_SRC_SERVE_PROTOCOL_H_
#define SKYDIA_SRC_SERVE_PROTOCOL_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <variant>

#include "src/common/status.h"
#include "src/core/diagram.h"
#include "src/core/range_query.h"
#include "src/geometry/dataset.h"
#include "src/geometry/point.h"

namespace skydia::serve {

/// What one request line asks for.
enum class RequestKind {
  kQuery,
  kRange,
  kPing,
  kStats,
  kReload,
  kInsert,
  kDelete,
  kFlush,
};

/// Per-kind request payloads: each kind carries exactly the fields it uses,
/// so adding a request kind never widens the others. Which alternative a
/// Request holds is determined by its kind (see Request::payload).
struct QueryPayload {
  Point2D q{0, 0};
  bool exact = false;
  bool labels = false;
  std::optional<SkylineQueryType> semantics;
};

struct RangePayload {
  QueryRange range;  ///< the [x_lo,x_hi]x[y_lo,y_hi] rectangle
  bool labels = false;
};

struct PingPayload {};
struct StatsPayload {};

struct ReloadPayload {
  std::string path;  ///< reload target ("" = current file)
};

struct InsertPayload {
  Point2D p{0, 0};
  std::optional<std::string> label;  ///< default "p<id>" when absent
};

struct DeletePayload {
  int64_t point = 0;  ///< id to delete (validated at apply time)
};

struct FlushPayload {};

/// One parsed request line: the kind, the correlation id, and the kind's
/// payload. The typed accessors assume the matching kind (checked by
/// std::get; ParseRequest always constructs the alternative matching kind).
struct Request {
  RequestKind kind = RequestKind::kQuery;
  std::optional<int64_t> id;  ///< echoed back verbatim when present
  /// Client-supplied request id ("" = absent; the server generates one).
  /// Stamped on the reply, the slow-query log, and trace spans.
  std::string rid;
  std::variant<QueryPayload, RangePayload, PingPayload, StatsPayload,
               ReloadPayload, InsertPayload, DeletePayload, FlushPayload>
      payload;

  const QueryPayload& query() const { return std::get<QueryPayload>(payload); }
  const RangePayload& range() const { return std::get<RangePayload>(payload); }
  const ReloadPayload& reload() const {
    return std::get<ReloadPayload>(payload);
  }
  const InsertPayload& insert() const {
    return std::get<InsertPayload>(payload);
  }
  const DeletePayload& del() const { return std::get<DeletePayload>(payload); }
};

/// Stable machine-readable error categories for the "code" reply field.
/// The names are wire contract: clients branch on them, so existing values
/// never change meaning.
enum class ErrorCode {
  kParseError,           ///< the request line failed to parse
  kInvalidArgument,      ///< well-formed but unservable request
  kDuplicateCoordinate,  ///< insert rejected by the distinct-coordinate rule
  kUnknownPoint,         ///< delete of an id outside the dataset
  kOverloaded,           ///< mutation backlog full; flush or retry later
};

/// The wire spelling of `code` ("parse_error", "invalid_argument", ...).
std::string_view ErrorCodeName(ErrorCode code);

/// Maps a Status from the serving/mutation layers to its wire code, on the
/// structured StatusCode alone (never on message text): NotFound ->
/// unknown_point, AlreadyExists -> duplicate_coordinate, ResourceExhausted
/// -> overloaded, everything else invalid_argument.
ErrorCode ErrorCodeForStatus(const Status& status);

/// Parses one request line (without the trailing newline). Returns
/// InvalidArgument with a position-annotated message on malformed input.
StatusOr<Request> ParseRequest(std::string_view line);

/// Appends `in` JSON-escaped (quotes, backslashes, control characters).
void JsonEscape(std::string_view in, std::string* out);

/// Renders a sorted id span as a JSON array: "[1,4,9]".
std::string RenderIdsArray(std::span<const PointId> ids);

/// Renders the labels of `ids` as a JSON array of strings.
std::string RenderLabelsArray(const Dataset& dataset,
                              std::span<const PointId> ids);

/// Appends one query reply line: {"id":N,"gen":G,<key>:<array_json>}\n.
/// `key` is "ids" or "labels"; `array_json` must already be rendered.
/// Every appender takes a trailing `rid` — the request id stamped as the
/// reply's LAST field (omitted when empty, for embedders without ids).
void AppendQueryReply(std::optional<int64_t> id, uint64_t generation,
                      std::string_view key, std::string_view array_json,
                      std::string* out, std::string_view rid = "");

/// Appends one range reply line:
/// {"id":N,"gen":G,"union":U,"intersection":I,"distinct":D}\n. The two
/// array payloads must already be rendered (ids or labels form).
void AppendRangeReply(std::optional<int64_t> id, uint64_t generation,
                      std::string_view union_json,
                      std::string_view intersection_json, uint64_t distinct,
                      std::string* out, std::string_view rid = "");

/// Appends one admin ack line: {"id":N,"ok":true,"gen":G}\n.
void AppendOkReply(std::optional<int64_t> id, uint64_t generation,
                   std::string* out, std::string_view rid = "");

/// Appends one insert ack line: {"id":N,"ok":true,"gen":G,"point":P}\n —
/// an AppendOkReply that also reports the new point's id.
void AppendInsertReply(std::optional<int64_t> id, uint64_t generation,
                       PointId point, std::string* out,
                       std::string_view rid = "");

/// Appends one error reply line: {"id":N,"error":"...","code":"..."}\n.
/// The code (and the rid after it) come last so prefix-matching clients of
/// the pre-code protocol keep working.
void AppendErrorReply(std::optional<int64_t> id, ErrorCode code,
                      std::string_view message, std::string* out,
                      std::string_view rid = "");

}  // namespace skydia::serve

#endif  // SKYDIA_SRC_SERVE_PROTOCOL_H_
