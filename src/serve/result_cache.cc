#include "src/serve/result_cache.h"

#include <utility>

namespace skydia::serve {

namespace {

size_t RoundUpPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

ResultCache::ResultCache(const ResultCacheOptions& options)
    : shard_count_(RoundUpPow2(options.shards == 0 ? 1 : options.shards)) {
  if (options.capacity == 0) {
    shard_capacity_ = 0;
  } else {
    shard_capacity_ = (options.capacity + shard_count_ - 1) / shard_count_;
    if (shard_capacity_ == 0) shard_capacity_ = 1;
  }
  shards_ = std::make_unique<Shard[]>(shard_count_);
}

ResultCache::Shard& ResultCache::ShardFor(uint64_t key) const {
  return shards_[SplitMix64(key) & (shard_count_ - 1)];
}

bool ResultCache::Lookup(uint64_t key, std::string* value) const {
  if (shard_capacity_ == 0) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  Shard& shard = ShardFor(key);
  MutexLock lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  *value = it->second->value;
  hits_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void ResultCache::Insert(uint64_t key, std::string value) {
  if (shard_capacity_ == 0) return;
  Shard& shard = ShardFor(key);
  MutexLock lock(shard.mu);
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    shard.value_bytes -= it->second->value.size();
    shard.value_bytes += value.size();
    it->second->value = std::move(value);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  if (shard.lru.size() >= shard_capacity_) {
    const Entry& victim = shard.lru.back();
    shard.value_bytes -= victim.value.size();
    shard.map.erase(victim.key);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  shard.value_bytes += value.size();
  shard.lru.push_front(Entry{key, std::move(value)});
  shard.map.emplace(key, shard.lru.begin());
}

ResultCacheStats ResultCache::Stats() const {
  ResultCacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.evictions = evictions_.load(std::memory_order_relaxed);
  for (size_t i = 0; i < shard_count_; ++i) {
    Shard& shard = shards_[i];
    MutexLock lock(shard.mu);
    stats.entries += shard.lru.size();
    stats.value_bytes += shard.value_bytes;
  }
  return stats;
}

}  // namespace skydia::serve
