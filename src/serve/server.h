// SkylineServer: the `skydia serve` daemon.
//
// A long-running TCP server answering line-delimited JSON skyline queries
// (src/serve/protocol.h) over a hot-swappable snapshot (snapshot_registry.h)
// with a per-snapshot reply cache (result_cache.h) and a Prometheus
// /metrics endpoint (metrics.h).
//
// Threading model: one acceptor thread plus one thread per connection.
// Connections poll with the idle timeout, read whole lines, answer each
// complete batch of lines through one pinned snapshot (so a pipelined batch
// is answered consistently even across a concurrent reload), and reply in
// order. A request that starts with "GET " is treated as HTTP: /metrics and
// /healthz are served and the connection closes — the same port works for
// both nc and curl.
//
// Robustness contract: a malformed line produces one error reply and the
// connection stays open; a line longer than max_request_bytes produces one
// error reply and closes the connection; client disconnects and SIGPIPE-free
// sends are handled; nothing a client sends can abort the process.
#ifndef SKYDIA_SRC_SERVE_SERVER_H_
#define SKYDIA_SRC_SERVE_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <thread>

#include "src/common/status.h"
#include "src/core/query_engine.h"
#include "src/serve/metrics.h"
#include "src/serve/result_cache.h"
#include "src/serve/snapshot_registry.h"

namespace skydia::serve {

/// Options for SkylineServer.
struct ServerOptions {
  /// Listen address. The default stays loopback-only; the daemon has no
  /// authentication story, so exposing it wider is an explicit choice.
  std::string host = "127.0.0.1";
  /// Listen port; 0 picks a free port (read it back via port()).
  int port = 0;
  /// Engine options for loaded snapshots (threads, memo, batch threshold).
  QueryEngineOptions engine;
  /// Semantics a cell blob encodes (the file format does not record
  /// quadrant vs global; dynamic is inferred from subcell blobs).
  SkylineQueryType cell_semantics = SkylineQueryType::kQuadrant;
  /// Per-snapshot reply cache sizing.
  ResultCacheOptions cache;
  /// A single request line (and a pipelined burst's buffer) may not exceed
  /// this many bytes; beyond it the connection is closed after one error.
  size_t max_request_bytes = 64 * 1024;
  /// Connections silent for this long are closed. <= 0 disables the timeout.
  int idle_timeout_ms = 60'000;
  /// Accepted connections above this cap are closed immediately.
  int max_connections = 256;
  /// Queries (and pipelined batches) slower than this are logged at Warning
  /// with their position and timing — the structured slow-query log.
  /// <= 0 disables it.
  int slow_query_ms = 250;
};

/// The serve daemon. Start() binds, loads the initial snapshot and returns;
/// serving happens on background threads until Stop() (also run by the
/// destructor) drains them.
class SkylineServer {
 public:
  explicit SkylineServer(const ServerOptions& options = {});
  ~SkylineServer();

  SkylineServer(const SkylineServer&) = delete;
  SkylineServer& operator=(const SkylineServer&) = delete;

  /// Loads `blob_path` as the initial snapshot, binds and starts serving.
  Status Start(const std::string& blob_path);
  /// Starts serving an already-loaded diagram (tests and embedders).
  /// `source_path` is what a path-less reload re-reads ("" disables it).
  Status Start(ServableDiagram diagram, std::string source_path);

  /// Stops accepting, closes every connection, joins all threads.
  /// Idempotent; safe to call from a signal-handling thread's context (it
  /// only uses shutdown/close/join, no allocation-order hazards).
  void Stop();

  /// Hot-swaps the snapshot from `path` ("" = re-read the current source).
  /// On failure the old snapshot keeps serving and the error is returned.
  Status Reload(const std::string& path);

  /// The bound port (valid after Start).
  int port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_acquire); }

  SnapshotRegistry& registry() { return registry_; }
  const ServerMetrics& metrics() const { return metrics_; }

  /// One /metrics scrape payload (also used by the HTTP path).
  std::string RenderMetrics() const;

 private:
  struct Connection {
    int fd = -1;
    std::thread thread;
    std::atomic<bool> done{false};
  };

  Status BindAndListen();
  void AcceptLoop();
  void ConnectionLoop(Connection* conn);
  /// Reaps finished connection threads; with `all` set, closes and joins
  /// every connection (Stop path).
  void ReapConnections(bool all);

  /// Answers one batch of complete request lines against one pinned
  /// snapshot, appending reply lines to `out`. Returns false when the
  /// connection must close (oversize line).
  void ServeBatch(std::span<const std::string_view> lines, std::string* out);
  void ServeHttp(std::string_view request_target, std::string* out);

  ServerOptions options_;
  SnapshotRegistry registry_;
  ServerMetrics metrics_;
  std::chrono::steady_clock::time_point start_time_;

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::thread acceptor_;
  std::mutex conns_mu_;
  std::list<std::unique_ptr<Connection>> conns_;  // guarded by conns_mu_
};

}  // namespace skydia::serve

#endif  // SKYDIA_SRC_SERVE_SERVER_H_
