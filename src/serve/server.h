// SkylineServer: the `skydia serve` daemon.
//
// A long-running TCP server answering line-delimited JSON skyline queries
// (src/serve/protocol.h) over a hot-swappable snapshot (snapshot_registry.h)
// with a per-snapshot reply cache (result_cache.h) and a Prometheus
// /metrics endpoint (metrics.h).
//
// Threading model: an epoll reactor. One event-loop thread owns every
// connection state machine — non-blocking accept/read/write, per-connection
// input and output buffers, and a coarse timing wheel for the idle timeout —
// while a small worker pool executes parsed request batches off the event
// thread. Concurrency is bounded by max_connections, not by OS threads.
//
// Event-loop invariants (the TSan contract):
//   * Connection objects are created, mutated and destroyed only on the
//     event-loop thread. Workers never see a Connection.
//   * Small pure-query batches execute inline on the event-loop thread —
//     the fast path that amortizes scheduler wakeups across connections.
//     HTTP requests, reloads, range scans and oversized batches cross to
//     the pool as a self-contained job (connection id + moved-out request
//     bytes) and return as a completion (connection id + rendered reply)
//     through a mutex-guarded queue; an eventfd (write-coalesced via an
//     atomic flag) wakes the loop. Stale completions for closed
//     connections are dropped by id.
//   * At most one batch per connection is in flight, and the connection's
//     read interest is parked while it is — replies stay in request order
//     and the input buffer stays bounded without any per-connection locks.
//   * Replies append to the connection's output buffer and drain via
//     EPOLLOUT; a peer that stops reading hits the max_response_bytes cap
//     and is dropped (write backpressure), so one slow client cannot pin
//     server memory.
//
// Batches answer against one pinned snapshot (so a pipelined batch is
// answered consistently even across a concurrent reload), in order. A
// request starting with "GET " is treated as HTTP and the connection closes
// after one response — the same port works for both nc and curl:
//   /metrics            Prometheus text exposition
//   /healthz            liveness: 200 "ok" while the process serves
//   /readyz             readiness: 503 before the first snapshot, else a
//                       JSON summary (generation, shards, points, backlog)
//   /debug/trace        the flight recorder's recent window as Chrome
//                       trace-event JSON (ui.perfetto.dev)
//   /debug/snapshot     registry + mutation-pipeline introspection JSON,
//                       including request-duration bucket exemplars
//   /debug/connections  per-connection state JSON (rendered inline on the
//                       event-loop thread, which owns the state machines)
//
// Request identity: every batch runs under a request-context token — the
// first client-supplied "rid" in the batch, else a server-generated one —
// so trace spans from the reactor dispatch, the worker, and the query
// shards share one id (src/common/trace.h). Replies, error replies and the
// slow-query log are stamped with the resolved rid.
//
// Robustness contract: a malformed line produces one error reply and the
// connection stays open; a line longer than max_request_bytes produces one
// error reply and closes the connection; partial reads, half-closed peers
// (FIN with replies pending — the tail is flushed), client disconnects and
// SIGPIPE-free sends are handled; nothing a client sends can abort the
// process.
#ifndef SKYDIA_SRC_SERVE_SERVER_H_
#define SKYDIA_SRC_SERVE_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/common/annotations.h"
#include "src/common/status.h"
#include "src/common/thread_pool.h"
#include "src/core/query_engine.h"
#include "src/core/sharded_diagram.h"
#include "src/serve/metrics.h"
#include "src/serve/mutation_pipeline.h"
#include "src/serve/result_cache.h"
#include "src/serve/snapshot_registry.h"

namespace skydia::serve {

/// Options for SkylineServer.
struct ServerOptions {
  /// Listen address. The default stays loopback-only; the daemon has no
  /// authentication story, so exposing it wider is an explicit choice.
  std::string host = "127.0.0.1";
  /// Listen port; 0 picks a free port (read it back via port()).
  int port = 0;
  /// Engine options for loaded snapshots (threads, memo, batch threshold).
  QueryEngineOptions engine;
  /// Semantics a cell blob encodes (the file format does not record
  /// quadrant vs global; dynamic is inferred from subcell blobs).
  SkylineQueryType cell_semantics = SkylineQueryType::kQuadrant;
  /// Per-snapshot reply cache sizing.
  ResultCacheOptions cache;
  /// Row-stripe shards per snapshot; <= 1 serves the unsharded engine.
  int num_shards = 1;
  /// Worker threads executing parsed batches off the event loop (>= 1).
  int num_workers = 1;
  /// Pure-query batches of at most this many lines execute inline on the
  /// event-loop thread (the reactor fast path). Batches above the limit,
  /// HTTP requests, and batches containing a command that can block the
  /// loop (reload, range scans) always go to the worker pool. 0 sends
  /// everything to the pool.
  int inline_batch_lines = 64;
  /// A single request line (and a pipelined burst's buffer) may not exceed
  /// this many bytes; beyond it the connection is closed after one error.
  size_t max_request_bytes = 64 * 1024;
  /// Write-backpressure cap: a connection whose un-drained output buffer
  /// exceeds this many bytes is dropped.
  size_t max_response_bytes = 4 * 1024 * 1024;
  /// Connections silent for this long are closed (granularity is coarse:
  /// the timing wheel rounds up by up to 1/8 of the timeout).
  /// <= 0 disables the timeout.
  int idle_timeout_ms = 60'000;
  /// Accepted connections above this cap are closed immediately.
  int max_connections = 256;
  /// Queries (and pipelined batches) slower than this are logged at Warning
  /// with their position and timing — the structured slow-query log.
  /// <= 0 disables it.
  int slow_query_ms = 250;
  /// Mutation publish coalescing window in milliseconds. <= 0 publishes
  /// every mutation synchronously before its ack; > 0 batches all mutations
  /// of a window into one snapshot publish ({"cmd":"flush"} publishes
  /// early). See mutation_pipeline.h.
  int mutation_window_ms = 0;
  /// Mutations allowed to wait for one publish before further mutation
  /// requests are rejected with the "overloaded" error code. 0 = no cap.
  size_t mutation_max_pending = 4096;
  /// Reject inserts that duplicate an existing x or y coordinate (surfaced
  /// as the "duplicate_coordinate" error code).
  bool mutation_require_distinct = false;
};

/// The serve daemon. Start() binds, loads the initial snapshot and returns;
/// serving happens on background threads until Stop() (also run by the
/// destructor) drains them.
class SkylineServer {
 public:
  explicit SkylineServer(const ServerOptions& options = {});
  ~SkylineServer();

  SkylineServer(const SkylineServer&) = delete;
  SkylineServer& operator=(const SkylineServer&) = delete;

  /// Loads `blob_path` as the initial snapshot, binds and starts serving.
  Status Start(const std::string& blob_path);
  /// Starts serving an already-loaded diagram (tests and embedders).
  /// `source_path` is what a path-less reload re-reads ("" disables it).
  Status Start(ServableDiagram diagram, std::string source_path);

  /// Stops accepting, closes every connection, joins the reactor and the
  /// worker pool. Idempotent.
  void Stop() SKYDIA_EXCLUDES(jobs_mu_, completions_mu_);

  /// Hot-swaps the snapshot from `path` ("" = re-read the current source).
  /// On failure the old snapshot keeps serving and the error is returned.
  Status Reload(const std::string& path);

  /// The bound port (valid after Start).
  int port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_acquire); }

  SnapshotRegistry& registry() { return registry_; }
  const ServerMetrics& metrics() const { return metrics_; }
  /// The write path (valid after Start; tests poke it directly).
  MutationPipeline* mutations() { return mutations_.get(); }

  /// One /metrics scrape payload (also used by the HTTP path).
  std::string RenderMetrics() const;

 private:
  /// One connection state machine. Owned and touched exclusively by the
  /// event-loop thread; workers refer to it only by `id`.
  struct Connection {
    int fd = -1;
    uint64_t id = 0;
    std::string inbuf;        ///< unconsumed request bytes
    std::string outbuf;       ///< reply bytes not yet written
    size_t out_off = 0;       ///< written prefix of outbuf
    bool want_write = false;  ///< EPOLLOUT currently armed
    bool reading = true;      ///< EPOLLIN currently armed
    bool http = false;        ///< switched to one-shot HTTP mode
    bool in_flight = false;   ///< a batch is at the worker pool
    bool closing = false;     ///< close once outbuf drains
    bool peer_half_closed = false;  ///< read saw EOF; flush, then close
    int wheel_slot = -1;      ///< idle-wheel bucket, -1 = not enrolled
    /// Request-context token of the in-flight batch (0 = none); cleared
    /// when its completion drains. Surfaces in /debug/connections.
    uint64_t ctx = 0;
    /// trace::NowNanos() of the last accept/read/completion activity —
    /// the /debug/connections idle age.
    uint64_t last_active_ns = 0;
  };

  /// A unit of work for the pool: one connection's batch of complete
  /// request lines, or one HTTP request. Self-contained — the strings are
  /// moved out of the connection before the handoff.
  struct Job {
    uint64_t conn_id = 0;
    std::string lines;        ///< complete lines, each '\n'-terminated
    bool http = false;
    std::string http_target;  ///< request target when http
    /// Request-context token the worker re-establishes before serving, so
    /// spans on the worker thread carry the same rid as the reactor's.
    uint64_t ctx = 0;
  };

  /// A finished job on its way back to the event loop.
  struct Completion {
    uint64_t conn_id = 0;
    std::string reply;
    bool close_after = false;  ///< HTTP one-shot: close once flushed
  };

  Status BindAndListen();
  void ReactorLoop() SKYDIA_REACTOR_ONLY;
  void WorkerLoop() SKYDIA_EXCLUDES(jobs_mu_, completions_mu_);

  // Everything below carrying SKYDIA_REACTOR_ONLY runs on the event-loop
  // thread only; tools/lint/check_concurrency.py additionally proves none
  // of these bodies can block the loop (no pool handoffs that wait, no
  // sleeps, no buffered disk I/O).
  void HandleAccept() SKYDIA_REACTOR_ONLY;
  void HandleReadable(Connection* conn) SKYDIA_REACTOR_ONLY;
  void HandleWritable(Connection* conn) SKYDIA_REACTOR_ONLY;
  void ProcessInput(Connection* conn) SKYDIA_REACTOR_ONLY;
  /// Whether a complete-line batch qualifies for the inline fast path.
  bool CanExecuteInline(const std::string& batch) const SKYDIA_REACTOR_ONLY;
  /// Answers a small batch directly on the event-loop thread and flushes.
  /// Returns false when the flush destroyed `conn`.
  bool ExecuteInline(Connection* conn,
                     std::string_view lines) SKYDIA_REACTOR_ONLY;
  void DispatchJob(Connection* conn,
                   Job job) SKYDIA_REACTOR_ONLY SKYDIA_EXCLUDES(jobs_mu_);
  void DrainCompletions() SKYDIA_REACTOR_ONLY SKYDIA_EXCLUDES(completions_mu_);
  /// Writes as much of outbuf as the socket accepts; arms/disarms EPOLLOUT
  /// and closes drained `closing` connections. Returns false when it
  /// destroyed `conn`.
  bool FlushOutput(Connection* conn) SKYDIA_REACTOR_ONLY;
  void SetReading(Connection* conn, bool reading) SKYDIA_REACTOR_ONLY;
  void UpdateEpoll(Connection* conn) SKYDIA_REACTOR_ONLY;
  void TouchIdleWheel(Connection* conn) SKYDIA_REACTOR_ONLY;
  void AdvanceIdleWheel() SKYDIA_REACTOR_ONLY;
  void CloseConnection(Connection* conn, bool idle = false) SKYDIA_REACTOR_ONLY;

  /// Answers one batch of complete request lines against one pinned
  /// snapshot, appending reply lines to `out`. Runs on worker threads and,
  /// for the inline fast path, on the event-loop thread, under the batch's
  /// request context (a server token is opened when none is active).
  void ServeBatch(std::span<const std::string_view> lines, std::string* out);
  void ServeHttp(std::string_view request_target, std::string* out);
  /// The /debug/connections payload. Reactor-only by necessity: the
  /// connection table and state machines belong to the event-loop thread.
  std::string RenderConnectionsJson() const SKYDIA_REACTOR_ONLY;
  /// The /debug/snapshot payload: registry generation/shards, mutation
  /// pipeline DebugState, and request-duration bucket exemplars.
  std::string RenderDebugSnapshotJson() const;

  ServerOptions options_;
  SnapshotRegistry registry_;
  ServerMetrics metrics_;
  /// The write path: shadow diagram + coalesced publish (see
  /// mutation_pipeline.h). Created by Start, torn down by Stop.
  std::unique_ptr<MutationPipeline> mutations_;
  std::chrono::steady_clock::time_point start_time_;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;  ///< eventfd: completions posted / Stop requested
  int port_ = 0;
  /// Ordering: Start() publishes all serving state with a release store;
  /// the reactor/worker loops and running() read it with acquire.
  std::atomic<bool> running_{false};
  std::thread reactor_;

  /// Scatter/gather pool for sharded batches; null when the engine is
  /// configured single-threaded (shards then answer sequentially in the
  /// worker, which is right for one-core hosts).
  std::unique_ptr<ThreadPool> shard_pool_;

  // Connection table: the event loop resolves completions by id. Only the
  // event-loop thread touches it.
  std::unordered_map<uint64_t, std::unique_ptr<Connection>> connections_;
  uint64_t next_conn_id_ = 1;

  // Idle-timeout wheel (event-loop thread only): kWheelSlots coarse buckets
  // of fds; the hand closes a bucket after one full revolution of silence.
  static constexpr size_t kWheelSlots = 16;
  std::vector<std::vector<uint64_t>> wheel_;
  int64_t wheel_tick_ms_ = 0;
  int64_t wheel_last_tick_ = 0;

  // Worker pool plumbing.
  std::vector<std::thread> workers_;
  Mutex jobs_mu_;
  std::condition_variable jobs_cv_;
  std::deque<Job> jobs_ SKYDIA_GUARDED_BY(jobs_mu_);
  bool workers_stop_ SKYDIA_GUARDED_BY(jobs_mu_) = false;
  Mutex completions_mu_;
  std::deque<Completion> completions_ SKYDIA_GUARDED_BY(completions_mu_);
  /// True while an eventfd wake for pending completions is outstanding —
  /// coalesces one wake_fd_ write per reactor drain instead of one per
  /// completion. Ordering: workers set it with an acq_rel exchange after
  /// release-publishing the completion; the event loop clears it (release)
  /// before swapping the queue, so a post-swap push always re-signals.
  std::atomic<bool> completions_signaled_{false};
};

}  // namespace skydia::serve

#endif  // SKYDIA_SRC_SERVE_SERVER_H_
