// ResultCache: a sharded LRU cache of rendered reply payloads, keyed by
// interned result-set id.
//
// The server caches the JSON array text ("[1,4,9]" or the label variant) per
// (SetId, labels) pair, so hot cells skip both the arena walk and the JSON
// rendering. SetIds are snapshot-local, therefore each ServingSnapshot owns
// its own cache (see snapshot_registry.h) — a hot swap retires the old cache
// with the old diagram and stale entries are impossible by construction.
//
// Sharding: keys are mixed through splitmix64 and the high bits pick a
// shard; each shard is an independent mutex + LRU list + hash map. Counters
// are relaxed atomics (exact totals, no ordering).
#ifndef SKYDIA_SRC_SERVE_RESULT_CACHE_H_
#define SKYDIA_SRC_SERVE_RESULT_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>

#include "src/common/annotations.h"

namespace skydia::serve {

/// Options for ResultCache.
struct ResultCacheOptions {
  /// Number of independent shards, rounded up to a power of two.
  size_t shards = 8;
  /// Total entry capacity across all shards. 0 disables caching (Lookup
  /// always misses, Insert is a no-op).
  size_t capacity = size_t{1} << 14;
};

/// Counter snapshot (see ResultCache::Stats).
struct ResultCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  uint64_t entries = 0;      ///< current resident entries
  uint64_t value_bytes = 0;  ///< current resident value payload bytes
};

/// Sharded LRU string cache. Thread-safe; all methods may be called
/// concurrently.
class ResultCache {
 public:
  explicit ResultCache(const ResultCacheOptions& options = {});

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  /// Copies the cached value for `key` into `*value` and returns true, or
  /// returns false on a miss. A hit refreshes the entry's LRU position.
  bool Lookup(uint64_t key, std::string* value) const;

  /// Inserts (or refreshes) `key` -> `value`, evicting the least recently
  /// used entry of the shard when it is full.
  void Insert(uint64_t key, std::string value);

  ResultCacheStats Stats() const;

 private:
  struct Entry {
    uint64_t key;
    std::string value;
  };
  struct Shard {
    mutable Mutex mu;
    /// front = most recently used
    std::list<Entry> lru SKYDIA_GUARDED_BY(mu);
    std::unordered_map<uint64_t, std::list<Entry>::iterator> map
        SKYDIA_GUARDED_BY(mu);
    size_t value_bytes SKYDIA_GUARDED_BY(mu) = 0;
  };

  Shard& ShardFor(uint64_t key) const;

  size_t shard_count_;      // power of two
  size_t shard_capacity_;   // per-shard entry cap; 0 disables the cache
  std::unique_ptr<Shard[]> shards_;

  // Ordering: relaxed counters — exact totals, no inter-thread ordering.
  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> evictions_{0};
};

}  // namespace skydia::serve

#endif  // SKYDIA_SRC_SERVE_RESULT_CACHE_H_
