// SnapshotRegistry: RCU-style hot-swap of the served diagram.
//
// The server pins one immutable ServingSnapshot per request batch via a
// shared_ptr copy; Reload() builds the replacement off to the side and swaps
// the pointer under a mutex. In-flight batches keep serving the snapshot
// they pinned until they drop their reference — queries never block on a
// reload and never observe a half-installed diagram.
//
// Each snapshot carries its own ResultCache: SetIds are meaningless across
// snapshots, so retiring the cache with its diagram makes stale cache hits
// structurally impossible (no invalidation protocol to get wrong).
//
// Sharding: when Install/Reload are given a shard count > 1, the snapshot
// also carries a ShardedServableDiagram built over the same loaded blob.
// The sharded view and every one of its stripe indexes are members of the
// one ServingSnapshot that the registry swaps atomically, so a hot-swap
// publishes all stripes under one generation — a batch can never observe
// stripes from two generations.
//
// Generation numbers increase monotonically from 1 and stamp every reply
// ("gen" field), which is what the hot-swap stress test asserts on.
#ifndef SKYDIA_SRC_SERVE_SNAPSHOT_REGISTRY_H_
#define SKYDIA_SRC_SERVE_SNAPSHOT_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "src/common/annotations.h"
#include "src/common/status.h"
#include "src/core/diagram.h"
#include "src/core/query_engine.h"
#include "src/core/sharded_diagram.h"
#include "src/serve/result_cache.h"

namespace skydia::serve {

/// One immutable serving generation: the loaded diagram, its reply cache,
/// and where it came from. Shared read-only across connection threads.
struct ServingSnapshot {
  std::shared_ptr<const ServableDiagram> diagram;
  /// Row-stripe sharded view over `diagram` (null when serving unsharded).
  /// All stripes belong to this snapshot: one generation, swapped as a unit.
  std::shared_ptr<const ShardedServableDiagram> sharded;
  std::shared_ptr<ResultCache> cache;
  uint64_t generation = 0;
  std::string source_path;  ///< blob the snapshot was loaded from

  /// The one surface to serve this snapshot through (the sharded view when
  /// present, else the single-index diagram). Readers target this so the
  /// serve layer never branches on the snapshot's shape.
  const Servable& serving() const {
    return sharded != nullptr ? static_cast<const Servable&>(*sharded)
                              : *diagram;
  }
};

/// Thread-safe holder of the current ServingSnapshot.
class SnapshotRegistry {
 public:
  SnapshotRegistry() = default;
  SnapshotRegistry(const SnapshotRegistry&) = delete;
  SnapshotRegistry& operator=(const SnapshotRegistry&) = delete;

  /// The current snapshot (null until the first Install/Reload). The caller
  /// holds the returned pointer for the duration of one request batch.
  std::shared_ptr<const ServingSnapshot> Current() const SKYDIA_EXCLUDES(mu_);

  /// Installs an already-loaded diagram as the new current snapshot with a
  /// fresh cache (and, when `sharding.num_shards > 1`, a sharded view built
  /// before the swap so all stripes publish atomically). Returns the new
  /// generation.
  uint64_t Install(ServableDiagram diagram, std::string source_path,
                   const ResultCacheOptions& cache_options = {},
                   const ShardingOptions& sharding = {}) SKYDIA_EXCLUDES(mu_);

  /// Loads `path` and installs it. On failure the current snapshot is left
  /// serving untouched. An empty `path` reloads the current snapshot's
  /// source file (error when nothing is installed yet).
  Status Reload(const std::string& path, const QueryEngineOptions& engine,
                SkylineQueryType cell_semantics,
                const ResultCacheOptions& cache_options = {},
                const ShardingOptions& sharding = {}) SKYDIA_EXCLUDES(mu_);

  /// Generation of the current snapshot (0 = nothing installed). Lock-free.
  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

 private:
  mutable Mutex mu_;
  std::shared_ptr<const ServingSnapshot> current_ SKYDIA_GUARDED_BY(mu_);
  /// Mirrors current_->generation for the lock-free generation() fast path;
  /// written under mu_ with release so readers see it monotonic.
  std::atomic<uint64_t> generation_{0};
};

}  // namespace skydia::serve

#endif  // SKYDIA_SRC_SERVE_SNAPSHOT_REGISTRY_H_
