#include "src/serve/snapshot_registry.h"

#include <utility>

namespace skydia::serve {

std::shared_ptr<const ServingSnapshot> SnapshotRegistry::Current() const {
  MutexLock lock(mu_);
  return current_;
}

uint64_t SnapshotRegistry::Install(ServableDiagram diagram,
                                   std::string source_path,
                                   const ResultCacheOptions& cache_options,
                                   const ShardingOptions& sharding) {
  auto snapshot = std::make_shared<ServingSnapshot>();
  snapshot->diagram =
      std::make_shared<const ServableDiagram>(std::move(diagram));
  if (sharding.num_shards > 1) {
    // Built fully before the swap below: stripes never publish piecemeal.
    auto view = ShardedServableDiagram::Create(snapshot->diagram, sharding);
    if (view.ok()) {
      snapshot->sharded = std::make_shared<const ShardedServableDiagram>(
          std::move(view).value());
    }
  }
  snapshot->cache = std::make_shared<ResultCache>(cache_options);
  snapshot->source_path = std::move(source_path);
  MutexLock lock(mu_);
  snapshot->generation = generation_.load(std::memory_order_relaxed) + 1;
  // The old snapshot's last reference may be held by an in-flight batch; it
  // is destroyed whenever that batch finishes, never under this mutex.
  current_ = std::move(snapshot);
  generation_.store(current_->generation, std::memory_order_release);
  return current_->generation;
}

Status SnapshotRegistry::Reload(const std::string& path,
                                const QueryEngineOptions& engine,
                                SkylineQueryType cell_semantics,
                                const ResultCacheOptions& cache_options,
                                const ShardingOptions& sharding) {
  std::string target = path;
  if (target.empty()) {
    auto current = Current();
    if (current == nullptr) {
      return Status::FailedPrecondition(
          "reload without a path needs an installed snapshot to re-read");
    }
    target = current->source_path;
  }
  // Load outside the lock: queries keep flowing against the old snapshot
  // while the replacement deserializes and builds its index.
  auto loaded = ServableDiagram::Load(target, engine, cell_semantics);
  if (!loaded.ok()) return loaded.status();
  Install(std::move(loaded).value(), std::move(target), cache_options,
          sharding);
  return Status::OK();
}

}  // namespace skydia::serve
