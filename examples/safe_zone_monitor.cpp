// Continuous skyline monitoring for a moving query — the scenario of the
// paper's related work (Huang et al., Lee et al.), solved with the diagram:
// while the query stays inside its current skyline polyomino (its safe
// zone), the result provably cannot change, so the monitor only recomputes
// when a region boundary is crossed.
//
//   $ ./safe_zone_monitor
#include <iostream>

#include "src/core/diagram.h"
#include "src/core/range_query.h"
#include "src/datagen/distributions.h"
#include "src/skyline/query.h"

using namespace skydia;

int main() {
  DataGenOptions gen;
  gen.n = 200;
  gen.domain_size = 512;
  gen.distribution = Distribution::kClustered;
  gen.seed = 5;
  auto dataset = GenerateDataset(gen);
  if (!dataset.ok()) {
    std::cerr << "datagen failed: " << dataset.status() << "\n";
    return 1;
  }
  auto built = SkylineDiagram::Build(*dataset, SkylineQueryType::kQuadrant);
  if (!built.ok()) {
    std::cerr << "build failed: " << built.status() << "\n";
    return 1;
  }
  const CellDiagram& diagram = *built->cell_diagram();

  // A query walking diagonally across the domain, one unit per tick.
  std::cout << "tick  position    result-changed?  skyline-size\n";
  int changes = 0;
  int evaluations = 0;
  SetId last = kEmptySetId;
  bool first = true;
  for (int64_t t = 0; t < 512; t += 8) {
    const Point2D q{t, 511 - t};
    // The diagram makes "did the result change?" a SetId comparison — no
    // skyline is ever recomputed while the walker stays inside a polyomino.
    const SetId current = diagram.QuerySetId(q);
    ++evaluations;
    const bool changed = first || current != last;
    if (changed && !first) ++changes;
    if (changed) {
      std::cout << "  " << t / 8 << "\t" << q << "\tyes\t\t "
                << diagram.pool().Get(current).size() << "\n";
    }
    last = current;
    first = false;
  }
  std::cout << "\n" << evaluations << " ticks, " << changes
            << " result changes; every no-change tick cost one grid lookup\n";

  // Safe-zone check for an uncertain position: a delivery drone knows its
  // location only within +-8 units. Is its result still unambiguous?
  const QueryRange uncertainty{200, 216, 200, 216};
  auto distinct = RangeDistinctResults(diagram, uncertainty);
  auto safe = RangeSkylineIntersection(diagram, uncertainty);
  auto possible = RangeSkylineUnion(diagram, uncertainty);
  if (!distinct.ok() || !safe.ok() || !possible.ok()) {
    std::cerr << "range query failed\n";
    return 1;
  }
  std::cout << "\nuncertainty box [200,216]^2: " << *distinct
            << " distinct results; " << safe->size()
            << " points are in the skyline everywhere in the box, "
            << possible->size() << " somewhere in it\n";
  return 0;
}
