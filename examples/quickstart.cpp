// Quickstart: build a skyline diagram over a synthetic dataset and answer
// skyline queries by point location.
//
//   $ ./quickstart
//
// Walks through the three query semantics (quadrant, global, dynamic) on a
// small generated dataset and prints what each query returns.
#include <iostream>

#include "src/core/diagram.h"
#include "src/datagen/distributions.h"

using namespace skydia;

namespace {

void PrintResult(const char* title, const std::vector<std::string>& labels) {
  std::cout << "  " << title << ": {";
  for (size_t i = 0; i < labels.size(); ++i) {
    std::cout << (i ? ", " : "") << labels[i];
  }
  std::cout << "}\n";
}

}  // namespace

int main() {
  // 1. Generate a small 2-D dataset (64 independent points on a 256 domain).
  DataGenOptions gen;
  gen.n = 64;
  gen.domain_size = 256;
  gen.distribution = Distribution::kIndependent;
  gen.seed = 7;
  auto dataset = GenerateDataset(gen);
  if (!dataset.ok()) {
    std::cerr << "datagen failed: " << dataset.status() << "\n";
    return 1;
  }
  std::cout << "dataset: " << dataset->size() << " points on [0, "
            << dataset->domain_size() << ")^2\n\n";

  // 2. Build one diagram per query semantics. Building is the expensive
  //    part; afterwards every query is a grid lookup.
  const Point2D q{100, 100};
  for (const SkylineQueryType type :
       {SkylineQueryType::kQuadrant, SkylineQueryType::kGlobal,
        SkylineQueryType::kDynamic}) {
    // Build takes the dataset by value; pass a copy to keep ours.
    auto built = SkylineDiagram::Build(*dataset, type);
    if (!built.ok()) {
      std::cerr << "build failed: " << built.status() << "\n";
      return 1;
    }
    std::cout << "query " << q << " against the "
              << SkylineQueryTypeName(type) << " diagram\n";
    PrintResult("result", built->QueryLabels(q));
    std::cout << "\n";
  }

  std::cout << "Tip: SkylineDiagram::Query is exact for quadrant semantics\n"
               "everywhere and for global/dynamic semantics at cell\n"
               "interiors; QueryExact adds a reference fallback on grid\n"
               "lines.\n";
  return 0;
}
