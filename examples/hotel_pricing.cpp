// The paper's running example (Figure 1): a hotel manager compares their
// hotel against the market using the three skyline query semantics.
//
//   $ ./hotel_pricing [distance] [price]
//
// Defaults to the paper's query q = (10, 80). Prints the diagram-backed
// results plus the polyomino structure of the quadrant diagram.
#include <cstdlib>
#include <iostream>

#include "src/core/diagram.h"
#include "src/core/merge.h"
#include "src/datagen/real_data.h"

using namespace skydia;

int main(int argc, char** argv) {
  Point2D q = HotelExampleQuery();
  if (argc == 3) {
    q.x = std::atoll(argv[1]);
    q.y = std::atoll(argv[2]);
  }
  const Dataset hotels = HotelExample();
  std::cout << "Market: " << hotels.size()
            << " hotels (x = distance to downtown, y = price)\n";
  for (PointId id = 0; id < hotels.size(); ++id) {
    std::cout << "  " << hotels.label(id) << " = " << hotels.point(id) << "\n";
  }
  std::cout << "\nYour hotel: q = " << q << "\n\n";

  const auto print = [](const char* what,
                        const std::vector<std::string>& labels) {
    std::cout << what << ": {";
    for (size_t i = 0; i < labels.size(); ++i) {
      std::cout << (i ? ", " : "") << labels[i];
    }
    std::cout << "}\n";
  };

  auto quadrant = SkylineDiagram::Build(hotels, SkylineQueryType::kQuadrant);
  auto global = SkylineDiagram::Build(hotels, SkylineQueryType::kGlobal);
  auto dynamic = SkylineDiagram::Build(hotels, SkylineQueryType::kDynamic);
  if (!quadrant.ok() || !global.ok() || !dynamic.ok()) {
    std::cerr << "diagram construction failed\n";
    return 1;
  }
  print("Quadrant skyline (worse in both dims)", quadrant->QueryLabels(q));
  print("Global skyline  (competitors per quadrant)", global->QueryLabels(q));
  print("Dynamic skyline (closest overall)", dynamic->QueryLabels(q));

  // Show the precomputed structure the queries run against.
  const CellDiagram& cells = *quadrant->cell_diagram();
  const MergedPolyominoes merged = MergeCells(cells);
  const auto stats = cells.ComputeStats();
  std::cout << "\nQuadrant diagram structure: " << stats.num_cells
            << " skyline cells merged into " << merged.num_polyominoes()
            << " skyline polyominoes (" << stats.num_distinct_sets
            << " distinct results, ~" << stats.approx_bytes << " bytes)\n";
  return 0;
}
