// Outsourced skyline queries, secured two ways (§I applications 2 and 3):
//
//  * Authentication: the data owner publishes a Merkle root over the
//    diagram; an untrusted server must accompany every answer with a proof,
//    and tampered answers fail verification.
//  * Privacy: the client retrieves the answer cell from two non-colluding
//    replicas with XOR-PIR, so neither server learns the query location.
//
//   $ ./private_authenticated_queries
#include <iostream>
#include <utility>

#include "src/apps/authentication.h"
#include "src/apps/pir.h"
#include "src/core/diagram.h"
#include "src/datagen/distributions.h"
#include "src/datagen/workload.h"

using namespace skydia;

int main() {
  DataGenOptions gen;
  gen.n = 128;
  gen.domain_size = 512;
  gen.seed = 23;
  auto dataset = GenerateDataset(gen);
  if (!dataset.ok()) {
    std::cerr << "datagen failed: " << dataset.status() << "\n";
    return 1;
  }
  auto built = SkylineDiagram::Build(std::move(dataset).value(),
                                     SkylineQueryType::kQuadrant);
  if (!built.ok()) {
    std::cerr << "diagram construction failed: " << built.status() << "\n";
    return 1;
  }
  const Dataset& data = built->dataset();
  const CellDiagram& diagram = *built->cell_diagram();
  std::cout << "diagram: " << diagram.grid().num_cells() << " cells over "
            << data.size() << " points\n\n";

  // --- Authentication ------------------------------------------------------
  const AuthenticatedDiagram auth(diagram);
  std::cout << "[auth] Merkle root: " << DigestToHex(auth.root()) << "\n";

  const Point2D q{200, 300};
  SkylineProof proof = auth.Prove(q);
  std::cout << "[auth] query " << q << " -> " << proof.result.size()
            << " skyline points, proof depth " << proof.path.size() << "\n";
  std::cout << "[auth] honest proof verifies: "
            << (AuthenticatedDiagram::Verify(auth.root(), auth.num_leaves(),
                                             proof)
                    ? "yes"
                    : "NO!")
            << "\n";
  SkylineProof tampered = proof;
  tampered.result.push_back(9999);
  std::cout << "[auth] tampered proof rejected: "
            << (!AuthenticatedDiagram::Verify(auth.root(), auth.num_leaves(),
                                              tampered)
                    ? "yes"
                    : "NO!")
            << "\n\n";

  // --- Private retrieval ---------------------------------------------------
  const PirDatabase db = BuildPirDatabase(diagram);
  const PirServer replica1(&db);
  const PirServer replica2(&db);
  std::cout << "[pir] database: " << db.num_records << " records x "
            << db.record_bytes << " bytes\n";
  Rng rng(31);
  int correct = 0;
  const auto queries = GenerateQueries(data, 20, 41);
  for (const Point2D& query : queries) {
    auto result =
        PrivateSkylineQuery(diagram, db, replica1, replica2, query, &rng);
    if (!result.ok()) continue;
    const auto expected = diagram.Query(query);
    if (result->size() == expected.size() &&
        std::equal(result->begin(), result->end(), expected.begin())) {
      ++correct;
    }
  }
  std::cout << "[pir] " << correct << "/" << queries.size()
            << " private queries reconstructed correctly; each server saw "
               "only a uniformly random record subset\n";
  return correct == static_cast<int>(queries.size()) ? 0 : 1;
}
