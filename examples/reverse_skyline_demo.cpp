// Reverse skyline demo (§I application 1): which products consider a new
// offering q "relevant competition"? A point p is in the reverse skyline of
// q when q belongs to p's dynamic skyline — i.e. no existing product is
// closer to p in every attribute than q is.
//
//   $ ./reverse_skyline_demo
#include <iostream>

#include "src/apps/reverse_skyline.h"
#include "src/common/timer.h"
#include "src/datagen/distributions.h"

using namespace skydia;

int main() {
  DataGenOptions gen;
  gen.n = 2000;
  gen.domain_size = 1024;
  gen.distribution = Distribution::kClustered;
  gen.seed = 11;
  auto dataset = GenerateDataset(gen);
  if (!dataset.ok()) {
    std::cerr << "datagen failed: " << dataset.status() << "\n";
    return 1;
  }

  const Point2D q{512, 512};
  std::cout << "dataset: " << dataset->size()
            << " products; probing launch position q = " << q << "\n\n";

  Timer build_timer;
  const ReverseSkylineIndex index(*dataset);
  std::cout << "index build: " << build_timer.ElapsedSeconds() * 1e3
            << " ms\n";

  Timer indexed_timer;
  const auto indexed = index.Query(q);
  const double indexed_ms = indexed_timer.ElapsedSeconds() * 1e3;

  Timer brute_timer;
  const auto brute = ReverseSkylineBruteForce(*dataset, q);
  const double brute_ms = brute_timer.ElapsedSeconds() * 1e3;

  std::cout << "reverse skyline size: " << indexed.size() << "\n";
  std::cout << "indexed query:  " << indexed_ms << " ms (O(n log^2 n) worst case)\n";
  std::cout << "brute force:    " << brute_ms
            << " ms (O(n^2) worst case; early exit helps on dense data)\n";
  std::cout << "agreement:      " << (indexed == brute ? "yes" : "NO!")
            << "\n\n";

  std::cout << "first few members:";
  for (size_t i = 0; i < indexed.size() && i < 8; ++i) {
    std::cout << " " << dataset->label(indexed[i])
              << dataset->point(indexed[i]);
  }
  std::cout << "\n";
  return indexed == brute ? 0 : 1;
}
